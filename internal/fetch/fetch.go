// Package fetch simulates the download side of the package manager:
// deterministic source archives served by an in-memory mirror, MD5 checksum
// verification against version directives, and the URL extrapolation of
// SC'15 §3.2.3 ("Spack can extrapolate URLs from versions, using the
// package's url attribute as a model"), including scraping a simulated
// listing for new versions.
package fetch

import (
	"crypto/md5"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/pkg"
	"repro/internal/version"
)

// Archive returns the deterministic simulated source tarball for a package
// release. Real Spack downloads bytes from the network; our substitute
// generates stable content so checksums are reproducible across runs.
func Archive(name string, v version.Version) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "tarball %s-%s\n", name, v)
	// Pad with deterministic filler so archives have nontrivial size.
	seed := md5.Sum([]byte(name + "@" + v.String()))
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&b, "%x\n", md5.Sum(append(seed[:], byte(i))))
	}
	return []byte(b.String())
}

// Checksum returns the MD5 hex digest of a simulated archive — the value a
// package's version directive must carry for verification to pass.
func Checksum(name string, v version.Version) string {
	sum := md5.Sum(Archive(name, v))
	return hex.EncodeToString(sum[:])
}

// ChecksumOf hashes raw archive bytes.
func ChecksumOf(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

// versionPattern matches version-looking substrings in URLs: runs of digits
// separated by dots (optionally with letter suffixes).
var versionPattern = regexp.MustCompile(`\d+(\.\d+)*([a-z]\d*)?`)

// ExtrapolateURL rewrites a URL template for a different version — how a
// user-requested version unknown to the package is fetched ("if the user
// requests a specific version ... Spack will attempt to fetch and install
// it"). It delegates to the pkg package's implementation, which package
// definitions use directly via URLFor.
func ExtrapolateURL(template string, oldV, newV version.Version) string {
	return pkg.ExtrapolateURL(template, oldV, newV)
}

// VersionFromURL extracts the most plausible version substring from a URL:
// the last version-looking run in the final path component, preferring
// multi-component matches. Returns the zero Version when nothing matches.
func VersionFromURL(url string) version.Version {
	base := url
	if i := strings.LastIndexByte(url, '/'); i >= 0 {
		base = url[i+1:]
	}
	// Strip common archive suffixes so ".tar.gz" digits never match.
	for _, suf := range []string{".tar.gz", ".tar.bz2", ".tar.xz", ".tgz", ".zip"} {
		base = strings.TrimSuffix(base, suf)
	}
	matches := versionPattern.FindAllString(base, -1)
	if len(matches) == 0 {
		return version.Version{}
	}
	best := matches[len(matches)-1]
	for _, m := range matches {
		if strings.Count(m, ".") > strings.Count(best, ".") {
			best = m
		}
	}
	return version.Parse(best)
}

// Mirror is a simulated download server: it serves archives for the
// releases registered against it and can list them for scraping. Beyond
// source tarballs it also hosts opaque named blobs — the transport the
// binary build cache (internal/buildcache) pushes its relocatable
// archives through, mirroring how real Spack mirrors carry a
// `build_cache/` directory next to the source tree.
type Mirror struct {
	mu         sync.RWMutex
	releases   map[string][]version.Version // package -> available versions
	blobs      map[string][]byte            // name -> opaque payload
	blobSums   map[string]string            // name -> SHA-256 hex, recorded at PutBlob
	blobStamps map[string]blobStamp         // name -> last-access stamp
	blobSeq    uint64                       // logical clock behind the stamps
	fetches    int
	blobReads  int
	blobWrites int
}

// blobStamp records when a blob was last touched: a logical sequence
// number (total order across reads and writes on this mirror) and the
// wall-clock time, so prunes can evict by recency or by age.
type blobStamp struct {
	seq uint64
	at  time.Time
}

// BlobUsage describes one blob's size and last access — the per-blob
// facts an LRU cache prune ranks evictions by. Seq orders accesses
// totally within this mirror's lifetime; Last is the wall-clock side for
// age bounds. Blobs never touched since the mirror came up carry their
// PutBlob stamp.
type BlobUsage struct {
	Name string
	Size int64
	Seq  uint64
	Last time.Time
}

// NewMirror creates an empty mirror.
func NewMirror() *Mirror {
	return &Mirror{
		releases:   make(map[string][]version.Version),
		blobs:      make(map[string][]byte),
		blobSums:   make(map[string]string),
		blobStamps: make(map[string]blobStamp),
	}
}

// touchBlob advances the logical clock and stamps a blob. Callers hold
// the write lock.
func (m *Mirror) touchBlob(name string) {
	m.blobSeq++
	m.blobStamps[name] = blobStamp{seq: m.blobSeq, at: time.Now()}
}

// Publish registers a release so the mirror will serve it.
func (m *Mirror) Publish(name string, v version.Version) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, existing := range m.releases[name] {
		if existing.Equal(v) {
			return
		}
	}
	m.releases[name] = append(m.releases[name], v)
}

// Available lists the published versions of a package, sorted ascending.
func (m *Mirror) Available(name string) []version.Version {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]version.Version, len(m.releases[name]))
	copy(out, m.releases[name])
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// FetchError reports a failed or corrupted download.
type FetchError struct {
	Package string
	Version string
	Reason  string
}

func (e *FetchError) Error() string {
	return fmt.Sprintf("fetch: %s@%s: %s", e.Package, e.Version, e.Reason)
}

// Fetch downloads the archive for a release and, when expectMD5 is
// nonempty, verifies the checksum (the safety check behind the paper's
// version directives). Unpublished releases fail.
func (m *Mirror) Fetch(name string, v version.Version, expectMD5 string) ([]byte, error) {
	m.mu.Lock()
	published := false
	for _, existing := range m.releases[name] {
		if existing.Equal(v) {
			published = true
			break
		}
	}
	if published {
		m.fetches++
	}
	m.mu.Unlock()
	if !published {
		return nil, &FetchError{Package: name, Version: v.String(), Reason: "no such release on mirror"}
	}
	data := Archive(name, v)
	if expectMD5 != "" {
		if got := ChecksumOf(data); got != expectMD5 {
			return nil, &FetchError{
				Package: name, Version: v.String(),
				Reason: fmt.Sprintf("checksum mismatch: got %s, want %s", got, expectMD5),
			}
		}
	}
	return data, nil
}

// PutBlob stores (or replaces) an opaque named payload on the mirror.
// The mirror copies the bytes, so callers may reuse their buffer. The
// payload's SHA-256 is recorded at write time, so integrity consumers
// (ETags, existence probes) never re-hash on the read path.
func (m *Mirror) PutBlob(name string, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	sum := sha256.Sum256(buf)
	m.mu.Lock()
	m.blobs[name] = buf
	m.blobSums[name] = hex.EncodeToString(sum[:])
	m.touchBlob(name)
	m.blobWrites++
	m.mu.Unlock()
}

// BlobSum returns the SHA-256 hex digest recorded when a named blob was
// stored, reporting whether the blob exists. It never reads (or hashes)
// the payload.
func (m *Mirror) BlobSum(name string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	sum, ok := m.blobSums[name]
	return sum, ok
}

// BlobStat reports a blob's existence, size, and recorded SHA-256
// without copying the payload — the mirror-side answer to a HEAD
// request.
func (m *Mirror) BlobStat(name string) (size int64, sum string, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, exists := m.blobs[name]
	if !exists {
		return 0, "", false
	}
	return int64(len(data)), m.blobSums[name], true
}

// Blob returns a copy of a named payload, reporting whether it exists.
func (m *Mirror) Blob(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.blobs[name]
	if !ok {
		return nil, false
	}
	m.touchBlob(name)
	m.blobReads++
	out := make([]byte, len(data))
	copy(out, data)
	return out, true
}

// DeleteBlob removes a named payload; missing names are a no-op.
func (m *Mirror) DeleteBlob(name string) {
	m.mu.Lock()
	delete(m.blobs, name)
	delete(m.blobSums, name)
	delete(m.blobStamps, name)
	m.mu.Unlock()
}

// BlobUsages returns size and last-access facts for every stored blob,
// sorted by name.
func (m *Mirror) BlobUsages() []BlobUsage {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]BlobUsage, 0, len(m.blobs))
	for name, data := range m.blobs {
		st := m.blobStamps[name]
		out = append(out, BlobUsage{Name: name, Size: int64(len(data)), Seq: st.seq, Last: st.at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Blobs lists the stored blob names, sorted.
func (m *Mirror) Blobs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.blobs))
	for name := range m.blobs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BlobCounts reports how many blob reads and writes the mirror served —
// the cache-traffic counters benchmarks and tests assert on.
func (m *Mirror) BlobCounts() (reads, writes int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.blobReads, m.blobWrites
}

// FetchCount reports how many successful fetches the mirror served.
func (m *Mirror) FetchCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fetches
}

// Scrape probes the mirror for versions of a package newer than the ones a
// package file declares — the paper's webpage-scraping feature ("Spack uses
// the same model to scrape webpages and find new versions"). It returns
// published versions not in known, sorted ascending.
func (m *Mirror) Scrape(name string, known []version.Version) []version.Version {
	isKnown := func(v version.Version) bool {
		for _, k := range known {
			if k.Equal(v) {
				return true
			}
		}
		return false
	}
	var out []version.Version
	for _, v := range m.Available(name) {
		if !isKnown(v) {
			out = append(out, v)
		}
	}
	return out
}
