package fetch

import (
	"reflect"
	"testing"
)

func TestBlobRoundTrip(t *testing.T) {
	m := NewMirror()
	m.PutBlob("build_cache/abc.spack.json", []byte("archive"))
	data, ok := m.Blob("build_cache/abc.spack.json")
	if !ok || string(data) != "archive" {
		t.Fatalf("Blob = %q, %v", data, ok)
	}
	if _, ok := m.Blob("absent"); ok {
		t.Error("absent blob reported present")
	}
}

func TestBlobCopiesBothWays(t *testing.T) {
	m := NewMirror()
	in := []byte("original")
	m.PutBlob("x", in)
	in[0] = '!' // caller mutating its slice must not reach the mirror
	out, _ := m.Blob("x")
	if string(out) != "original" {
		t.Errorf("stored blob aliased the caller's slice: %q", out)
	}
	out[0] = '?' // and mutating the returned copy must not either
	again, _ := m.Blob("x")
	if string(again) != "original" {
		t.Errorf("returned blob aliased the stored bytes: %q", again)
	}
}

func TestBlobOverwriteDeleteList(t *testing.T) {
	m := NewMirror()
	m.PutBlob("b", []byte("1"))
	m.PutBlob("a", []byte("2"))
	m.PutBlob("b", []byte("3"))
	if got := m.Blobs(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Blobs = %v, want sorted [a b]", got)
	}
	data, _ := m.Blob("b")
	if string(data) != "3" {
		t.Errorf("overwrite lost: %q", data)
	}
	m.DeleteBlob("a")
	if got := m.Blobs(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("Blobs after delete = %v", got)
	}
}

func TestBlobCounts(t *testing.T) {
	m := NewMirror()
	m.PutBlob("a", []byte("x"))
	m.PutBlob("b", []byte("y"))
	m.Blob("a")
	m.Blob("a")
	m.Blob("absent") // misses are not reads
	reads, writes := m.BlobCounts()
	if reads != 2 || writes != 2 {
		t.Errorf("BlobCounts = %d reads, %d writes; want 2, 2", reads, writes)
	}
}
