package fetch

import (
	"strings"
	"testing"

	"repro/internal/version"
)

func TestArchiveDeterministic(t *testing.T) {
	a := Archive("libelf", version.Parse("0.8.13"))
	b := Archive("libelf", version.Parse("0.8.13"))
	if string(a) != string(b) {
		t.Error("archives must be deterministic")
	}
	c := Archive("libelf", version.Parse("0.8.12"))
	if string(a) == string(c) {
		t.Error("different versions must differ")
	}
	if len(a) < 1000 {
		t.Errorf("archive too small: %d bytes", len(a))
	}
}

func TestChecksumMatchesArchive(t *testing.T) {
	v := version.Parse("1.0")
	if Checksum("mpileaks", v) != ChecksumOf(Archive("mpileaks", v)) {
		t.Error("Checksum must hash the archive")
	}
	if len(Checksum("mpileaks", v)) != 32 {
		t.Error("MD5 hex must be 32 chars")
	}
}

func TestExtrapolateURL(t *testing.T) {
	tmpl := "https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz"
	got := ExtrapolateURL(tmpl, version.Parse("1.0"), version.Parse("2.3"))
	want := "https://github.com/hpc/mpileaks/releases/download/v2.3/mpileaks-2.3.tar.gz"
	if got != want {
		t.Errorf("ExtrapolateURL = %q, want %q", got, want)
	}
	// Same version: unchanged.
	if ExtrapolateURL(tmpl, version.Parse("1.0"), version.Parse("1.0")) != tmpl {
		t.Error("same-version extrapolation should be identity")
	}
	// Zero old version: unchanged.
	if ExtrapolateURL(tmpl, version.Version{}, version.Parse("2.0")) != tmpl {
		t.Error("zero old version should be identity")
	}
}

func TestVersionFromURL(t *testing.T) {
	tests := []struct{ url, want string }{
		{"https://www.mr511.de/software/libelf-0.8.13.tar.gz", "0.8.13"},
		{"https://www.python.org/ftp/python/2.7.9/Python-2.7.9.tgz", "2.7.9"},
		{"https://www.mpich.org/static/downloads/3.1.4/mpich-3.1.4.tar.gz", "3.1.4"},
		{"https://www.prevanders.net/libdwarf-20130729.tar.gz", "20130729"},
		{"https://example.com/noversion.tar.gz", ""},
	}
	for _, tt := range tests {
		got := VersionFromURL(tt.url)
		if got.String() != tt.want {
			t.Errorf("VersionFromURL(%q) = %q, want %q", tt.url, got, tt.want)
		}
	}
}

func TestMirrorPublishFetch(t *testing.T) {
	m := NewMirror()
	v := version.Parse("0.8.13")
	m.Publish("libelf", v)
	m.Publish("libelf", v) // duplicate publish is a no-op

	if got := m.Available("libelf"); len(got) != 1 {
		t.Fatalf("Available = %v", got)
	}

	data, err := m.Fetch("libelf", v, Checksum("libelf", v))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty archive")
	}
	if m.FetchCount() != 1 {
		t.Errorf("FetchCount = %d", m.FetchCount())
	}
}

func TestMirrorChecksumMismatch(t *testing.T) {
	m := NewMirror()
	v := version.Parse("1.0")
	m.Publish("p", v)
	_, err := m.Fetch("p", v, strings.Repeat("0", 32))
	if err == nil {
		t.Fatal("expected checksum failure")
	}
	fe, ok := err.(*FetchError)
	if !ok || !strings.Contains(fe.Error(), "checksum mismatch") {
		t.Errorf("error = %v", err)
	}
}

func TestMirrorUnpublished(t *testing.T) {
	m := NewMirror()
	if _, err := m.Fetch("ghost", version.Parse("1.0"), ""); err == nil {
		t.Error("unpublished release must fail")
	}
	if m.FetchCount() != 0 {
		t.Error("failed fetch should not count")
	}
}

func TestMirrorNoChecksumSkipsVerification(t *testing.T) {
	// Bleeding-edge versions unknown to the package have no checksum
	// (§3.2.3); fetch must still work.
	m := NewMirror()
	v := version.Parse("9.9")
	m.Publish("p", v)
	if _, err := m.Fetch("p", v, ""); err != nil {
		t.Errorf("fetch without checksum: %v", err)
	}
}

func TestScrape(t *testing.T) {
	m := NewMirror()
	for _, v := range []string{"1.0", "1.1", "2.0"} {
		m.Publish("p", version.Parse(v))
	}
	known := []version.Version{version.Parse("1.0"), version.Parse("1.1")}
	newer := m.Scrape("p", known)
	if len(newer) != 1 || newer[0].String() != "2.0" {
		t.Errorf("Scrape = %v", newer)
	}
	if got := m.Scrape("p", nil); len(got) != 3 {
		t.Errorf("Scrape with no known = %v", got)
	}
}

func TestAvailableSorted(t *testing.T) {
	m := NewMirror()
	for _, v := range []string{"2.0", "1.0", "1.5"} {
		m.Publish("p", version.Parse(v))
	}
	got := m.Available("p")
	if got[0].String() != "1.0" || got[2].String() != "2.0" {
		t.Errorf("Available = %v", got)
	}
}

func TestExtrapolateURLAlternateSeparators(t *testing.T) {
	// boost-style: dots in the directory, underscores in the file name.
	tmpl := "https://downloads.sourceforge.net/project/boost/boost/1.55.0/boost_1_55_0.tar.bz2"
	got := ExtrapolateURL(tmpl, version.Parse("1.55.0"), version.Parse("1.59.0"))
	want := "https://downloads.sourceforge.net/project/boost/boost/1.59.0/boost_1_59_0.tar.bz2"
	if got != want {
		t.Errorf("ExtrapolateURL = %q, want %q", got, want)
	}
}
