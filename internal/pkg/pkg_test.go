package pkg

import (
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/internal/syntax"
	"repro/internal/version"
)

func TestBuilderMetadata(t *testing.T) {
	p := New("mpileaks").
		Describe("Tool to detect and report leaked MPI objects.").
		WithHomepage("https://github.com/hpc/mpileaks").
		WithURL("https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz").
		WithVersion("1.0", "8838c574b39202a57d7c2d68692718aa").
		WithVersion("1.1", "4282eddb08ad8d36df15b06d4be38bcb").
		DependsOn("mpi").
		DependsOn("callpath")
	if p.Name != "mpileaks" || !strings.Contains(p.Description, "leaked MPI") {
		t.Error("metadata not recorded")
	}
	if len(p.VersionInfos) != 2 || len(p.Dependencies) != 2 {
		t.Errorf("directives = %d versions, %d deps", len(p.VersionInfos), len(p.Dependencies))
	}
	vi, ok := p.VersionInfo(version.Parse("1.0"))
	if !ok || vi.MD5 != "8838c574b39202a57d7c2d68692718aa" {
		t.Errorf("VersionInfo(1.0) = %+v, %v", vi, ok)
	}
	if _, ok := p.VersionInfo(version.Parse("9.9")); ok {
		t.Error("unknown version should not resolve")
	}
}

func TestKnownVersionsSorted(t *testing.T) {
	p := New("p").
		WithVersion("1.0", "x").
		WithVersion("2.3", "x").
		WithVersion("1.1", "x")
	vs := p.KnownVersions()
	if len(vs) != 3 || vs[0].String() != "2.3" || vs[2].String() != "1.0" {
		t.Errorf("KnownVersions = %v", vs)
	}
}

func TestConditionalDependencies(t *testing.T) {
	// The ROSE example of §3.2.4: boost version depends on compiler.
	p := New("rose").
		DependsOn("boost@1.54.0", When("%gcc@:4")).
		DependsOn("boost@1.59.0", When("%gcc@5:"))

	gcc4 := spec.New("rose")
	gcc4.Compiler = spec.Compiler{Name: "gcc", Versions: mustList(t, "4.9.2")}
	deps := p.DependenciesFor(gcc4)
	if len(deps) != 1 || deps[0].Constraint.Versions.String() != "1.54.0" {
		t.Errorf("gcc4 deps = %v", deps)
	}

	gcc5 := spec.New("rose")
	gcc5.Compiler = spec.Compiler{Name: "gcc", Versions: mustList(t, "5.2.0")}
	deps = p.DependenciesFor(gcc5)
	if len(deps) != 1 || deps[0].Constraint.Versions.String() != "1.59.0" {
		t.Errorf("gcc5 deps = %v", deps)
	}

	// Unresolved compiler: neither condition holds yet.
	bare := spec.New("rose")
	if deps := p.DependenciesFor(bare); len(deps) != 0 {
		t.Errorf("bare deps = %v", deps)
	}
}

func TestVariantGatedDependency(t *testing.T) {
	p := New("hdf5").
		WithVariant("mpi", true, "parallel I/O").
		DependsOn("mpi", When("+mpi")).
		DependsOn("zlib")
	s := spec.New("hdf5")
	s.SetVariant("mpi", true)
	deps := p.DependenciesFor(s)
	if len(deps) != 2 {
		t.Fatalf("with +mpi: %d deps", len(deps))
	}
	s2 := spec.New("hdf5")
	s2.SetVariant("mpi", false)
	deps = p.DependenciesFor(s2)
	if len(deps) != 1 || deps[0].Constraint.Name != "zlib" {
		t.Errorf("with ~mpi: %v", deps)
	}
}

func TestDependenciesForReturnsClones(t *testing.T) {
	p := New("a").DependsOn("b@1.0")
	s := spec.New("a")
	d1 := p.DependenciesFor(s)[0].Constraint
	d1.Arch = "bgq"
	d2 := p.DependenciesFor(s)[0].Constraint
	if d2.Arch == "bgq" {
		t.Error("DependenciesFor must return fresh clones")
	}
}

func TestProvidesVersioned(t *testing.T) {
	// Fig. 5 exactly.
	mvapich2 := New("mvapich2").
		ProvidesVirtual("mpi@:2.2", "@1.9").
		ProvidesVirtual("mpi@:3.0", "@2.0")
	v19 := spec.New("mvapich2")
	v19.Versions = version.ExactList(version.Parse("1.9"))
	got := mvapich2.ProvidesFor(v19)
	if len(got) != 1 || got[0].Versions.String() != ":2.2" {
		t.Errorf("mvapich2@1.9 provides %v", got)
	}
	v20 := spec.New("mvapich2")
	v20.Versions = version.ExactList(version.Parse("2.0"))
	got = mvapich2.ProvidesFor(v20)
	if len(got) != 1 || got[0].Versions.String() != ":3.0" {
		t.Errorf("mvapich2@2.0 provides %v", got)
	}
	if !mvapich2.ProvidesVirtualName("mpi") {
		t.Error("ProvidesVirtualName(mpi) should be true")
	}
	if mvapich2.ProvidesVirtualName("blas") {
		t.Error("ProvidesVirtualName(blas) should be false")
	}
}

func TestConditionalPatches(t *testing.T) {
	// §3.2.4's Python BG/Q patches.
	p := New("python").
		WithPatch("python-bgq-xlc.patch", "=bgq%xl").
		WithPatch("python-bgq-clang.patch", "=bgq%clang").
		WithPatch("always.patch", "")

	bgqXL := spec.New("python")
	bgqXL.Arch = "bgq"
	bgqXL.Compiler = spec.Compiler{Name: "xl"}
	got := p.PatchesFor(bgqXL)
	if len(got) != 2 {
		t.Fatalf("bgq/xl patches = %v", got)
	}
	if got[0].Name != "python-bgq-xlc.patch" || got[1].Name != "always.patch" {
		t.Errorf("patches = %v", got)
	}

	linux := spec.New("python")
	linux.Arch = "linux-x86_64"
	linux.Compiler = spec.Compiler{Name: "gcc"}
	got = p.PatchesFor(linux)
	if len(got) != 1 || got[0].Name != "always.patch" {
		t.Errorf("linux patches = %v", got)
	}
}

func TestVariantDefault(t *testing.T) {
	p := New("p").WithVariant("debug", false, "").WithVariant("shared", true, "")
	if d, ok := p.VariantDefault("debug"); !ok || d {
		t.Error("debug default should be false")
	}
	if d, ok := p.VariantDefault("shared"); !ok || !d {
		t.Error("shared default should be true")
	}
	if _, ok := p.VariantDefault("nope"); ok {
		t.Error("unknown variant should not resolve")
	}
}

// recordingCtx records the commands an install function issues.
type recordingCtx struct {
	cmds []string
}

func (r *recordingCtx) Configure(args ...string) error {
	r.cmds = append(r.cmds, "configure "+strings.Join(args, " "))
	return nil
}
func (r *recordingCtx) CMake(args ...string) error {
	r.cmds = append(r.cmds, "cmake "+strings.Join(args, " "))
	return nil
}
func (r *recordingCtx) Make(targets ...string) error {
	r.cmds = append(r.cmds, strings.TrimSpace("make "+strings.Join(targets, " ")))
	return nil
}
func (r *recordingCtx) ApplyPatch(name string) error {
	r.cmds = append(r.cmds, "patch "+name)
	return nil
}
func (r *recordingCtx) SetEnv(k, v string) { r.cmds = append(r.cmds, "env "+k+"="+v) }
func (r *recordingCtx) Prefix() string     { return "/prefix" }
func (r *recordingCtx) DepPrefix(name string) (string, error) {
	return "/deps/" + name, nil
}
func (r *recordingCtx) WorkingDir(name string) error {
	r.cmds = append(r.cmds, "cd "+name)
	return nil
}
func (r *recordingCtx) StdCmakeArgs() []string { return []string{"-DCMAKE_INSTALL_PREFIX=/prefix"} }

func concreteSpec(t *testing.T, expr string) *spec.Spec {
	t.Helper()
	return syntax.MustParse(expr)
}

// TestInstallDispatch reproduces Fig. 4: dyninst <= 8.1 uses autotools,
// newer versions the cmake default.
func TestInstallDispatch(t *testing.T) {
	p := New("dyninst").WithBuild("cmake", 10)
	p.OnInstallWhen("@:8.1", func(ctx BuildContext, s *spec.Spec, prefix string) error {
		return ctx.Configure("--prefix=" + prefix)
	})

	old := concreteSpec(t, "dyninst@8.1.2")
	ctx := &recordingCtx{}
	if err := p.InstallFor(old)(ctx, old, "/prefix"); err != nil {
		t.Fatal(err)
	}
	if len(ctx.cmds) != 1 || !strings.HasPrefix(ctx.cmds[0], "configure") {
		t.Errorf("old dyninst commands = %v", ctx.cmds)
	}

	newer := concreteSpec(t, "dyninst@8.2.1")
	ctx = &recordingCtx{}
	if err := p.InstallFor(newer)(ctx, newer, "/prefix"); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(ctx.cmds, "; ")
	if !strings.Contains(joined, "cmake") || !strings.Contains(joined, "cd spack-build") {
		t.Errorf("new dyninst commands = %v", ctx.cmds)
	}
}

func TestGenericAutotoolsInstall(t *testing.T) {
	p := New("libelf")
	s := concreteSpec(t, "libelf@0.8.13")
	ctx := &recordingCtx{}
	if err := p.InstallFor(s)(ctx, s, "/prefix"); err != nil {
		t.Fatal(err)
	}
	want := []string{"configure --prefix=/prefix", "make", "make install"}
	if strings.Join(ctx.cmds, "|") != strings.Join(want, "|") {
		t.Errorf("commands = %v", ctx.cmds)
	}
}

func TestExtends(t *testing.T) {
	p := New("py-numpy").Extends("python")
	if p.Extendee != "python" {
		t.Error("Extendee not set")
	}
	// Extends implies a dependency.
	found := false
	for _, d := range p.Dependencies {
		if d.Constraint.Name == "python" {
			found = true
		}
	}
	if !found {
		t.Error("Extends should add a dependency on the extendee")
	}
}

func TestValidate(t *testing.T) {
	good := New("p").WithVersion("1.0", "x").WithVariant("debug", false, "")
	if err := good.Validate(); err != nil {
		t.Errorf("valid package rejected: %v", err)
	}
	dupV := New("p").WithVersion("1.0", "x").WithVersion("1.0", "y")
	if err := dupV.Validate(); err == nil {
		t.Error("duplicate version should fail validation")
	}
	dupVar := New("p").WithVariant("d", false, "").WithVariant("d", true, "")
	if err := dupVar.Validate(); err == nil {
		t.Error("duplicate variant should fail validation")
	}
	selfDep := New("p").DependsOn("p")
	if err := selfDep.Validate(); err == nil {
		t.Error("self dependency should fail validation")
	}
}

func TestBadDirectivesPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name":     func() { New("") },
		"bad depends_on": func() { New("p").DependsOn("!!") },
		"bad provides":   func() { New("p").ProvidesVirtual("!!", "") },
		"bad when":       func() { New("p").DependsOn("q", When("!!")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func mustList(t *testing.T, s string) version.List {
	t.Helper()
	l, err := version.ParseList(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestDeprecatedVersions(t *testing.T) {
	p := New("p").
		WithVersion("1.0", "x").
		WithVersion("2.0", "x", Deprecated()).
		WithVersion("1.5", "x")
	known := p.KnownVersions()
	if len(known) != 2 || known[0].String() != "1.5" {
		t.Errorf("KnownVersions = %v (deprecated 2.0 must be excluded)", known)
	}
	all := p.AllVersions()
	if len(all) != 3 || all[0].String() != "2.0" {
		t.Errorf("AllVersions = %v", all)
	}
	// Still resolvable when pinned explicitly.
	if _, ok := p.VersionInfo(version.Parse("2.0")); !ok {
		t.Error("deprecated version lost its directive")
	}
}

func TestURLFor(t *testing.T) {
	p := New("mpileaks").
		WithURL("https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz").
		WithVersion("1.0", "x").
		WithVersion("2.3", "x")
	// The template's own version is returned verbatim.
	if got := p.URLFor(version.Parse("1.0")); !strings.Contains(got, "v1.0/mpileaks-1.0") {
		t.Errorf("URLFor(1.0) = %q", got)
	}
	// Other versions extrapolate (§3.2.3).
	want := "https://github.com/hpc/mpileaks/releases/download/v2.3/mpileaks-2.3.tar.gz"
	if got := p.URLFor(version.Parse("2.3")); got != want {
		t.Errorf("URLFor(2.3) = %q", got)
	}
	// Unknown versions extrapolate too.
	if got := p.URLFor(version.Parse("9.9")); !strings.Contains(got, "v9.9") {
		t.Errorf("URLFor(9.9) = %q", got)
	}
	// Per-version override wins.
	p.WithVersion("0.9", "x", VersionURL("https://old.example.com/mpileaks-legacy.tgz"))
	if got := p.URLFor(version.Parse("0.9")); got != "https://old.example.com/mpileaks-legacy.tgz" {
		t.Errorf("URLFor(0.9) = %q", got)
	}
	// No template: empty.
	if got := New("x").URLFor(version.Parse("1.0")); got != "" {
		t.Errorf("URLFor without template = %q", got)
	}
}
