// Package pkg models Spack packages (SC'15 §3.1): templates that can be
// configured and built many different ways according to a spec. A Package
// carries metadata directives — versions with checksums, conditional
// dependencies, versioned virtual provides, variants, conditional patches —
// and one or more install procedures selected by build specialization
// (§3.2.5's @when dispatch).
//
// The Go analogue of the paper's Python DSL is a fluent builder: directives
// are methods, `when=` predicates are spec strings parsed once at package
// definition time.
package pkg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
	"repro/internal/syntax"
	"repro/internal/version"
)

// VersionInfo is one `version(...)` directive: a known release, its download
// checksum, and an optional URL override.
type VersionInfo struct {
	Version    version.Version
	MD5        string
	URL        string
	Deprecated bool
}

// Dependency is one `depends_on(...)` directive. Constraint is the spec the
// dependency must satisfy; When (nil = always) gates the edge on the
// depending package's own configuration, e.g. depends_on("mpi", when="+mpi").
type Dependency struct {
	Constraint *spec.Spec
	When       *spec.Spec
	// BuildOnly marks tool dependencies (cmake, autoconf) that are needed at
	// build time but not linked into the result.
	BuildOnly bool
}

// Provided is one `provides(...)` directive: this package implements the
// virtual interface Virtual (possibly version-constrained, e.g. mpi@:2.2)
// when the package's configuration satisfies When (§3.3, Fig. 5).
type Provided struct {
	Virtual *spec.Spec
	When    *spec.Spec
}

// Variant declares a named build option and its default (§3.2.3).
type Variant struct {
	Name        string
	Default     bool
	Description string
}

// Patch is one `patch(...)` directive, applied when the spec matches.
type Patch struct {
	Name string
	When *spec.Spec
}

// FeatureRequirement declares that building this package needs a compiler
// capability like "cxx11" or "openmp4" (the feature-aware compiler
// selection §4.5 calls for), optionally gated on a spec predicate.
type FeatureRequirement struct {
	Feature string
	When    *spec.Spec
}

// BuildContext is the API an install procedure uses to act on the (possibly
// simulated) build substrate. It mirrors the shell-command DSL of the paper
// (Fig. 1): configure, make, make install, cmake. The build package provides
// the implementation; keeping the interface here lets package definitions
// stay independent of the simulator.
type BuildContext interface {
	// Configure runs ./configure with arguments (autotools path).
	Configure(args ...string) error
	// CMake runs cmake with arguments.
	CMake(args ...string) error
	// Make runs make with optional targets.
	Make(targets ...string) error
	// ApplyPatch applies a named patch file to the source tree.
	ApplyPatch(name string) error
	// SetEnv sets a build-environment variable for subsequent commands.
	SetEnv(key, value string)
	// Prefix returns the unique install prefix for this build (§3.1).
	Prefix() string
	// DepPrefix returns the install prefix of a named dependency, the
	// analogue of spec["callpath"].prefix in Fig. 1.
	DepPrefix(name string) (string, error)
	// WorkingDir creates and enters a build subdirectory (Fig. 4's
	// working_dir("spack-build")).
	WorkingDir(name string) error
	// StdCmakeArgs returns the standard cmake arguments Spack injects.
	StdCmakeArgs() []string
}

// InstallFunc is a package's install procedure: it receives the build
// context, the concrete spec being built, and the destination prefix.
type InstallFunc func(ctx BuildContext, s *spec.Spec, prefix string) error

// installCase pairs an install implementation with its @when predicate.
type installCase struct {
	when *spec.Spec // nil = default implementation
	fn   InstallFunc
}

// Package is the compiled form of a package definition.
type Package struct {
	Name        string
	Description string
	Homepage    string
	URLTemplate string

	VersionInfos []VersionInfo
	Dependencies []Dependency
	Provides     []Provided
	Variants     []Variant
	Patches      []Patch
	Features     []FeatureRequirement

	// Extendee names the package this one extends (§4.2's
	// extends('python')); empty for ordinary packages.
	Extendee string

	// BuildUnits sizes the simulated build: the number of compile steps the
	// build simulator issues (calibrated per package for Fig. 10).
	BuildUnits int
	// BuildSystem is "autotools" or "cmake"; used by the default install.
	BuildSystem string
	// Artifacts is the number of files the install step writes into the
	// prefix (0 means "same as BuildUnits"); Python-style packages that
	// install hundreds of small files set it explicitly, which drives
	// their filesystem-latency sensitivity (Fig. 11).
	Artifacts int

	installs   []installCase
	defaultIns InstallFunc
}

// New begins a package definition.
func New(name string) *Package {
	if name == "" {
		panic("pkg: empty package name")
	}
	return &Package{Name: name, BuildSystem: "autotools", BuildUnits: 10}
}

// Describe sets the docstring.
func (p *Package) Describe(text string) *Package { p.Description = text; return p }

// WithHomepage sets the homepage URL.
func (p *Package) WithHomepage(url string) *Package { p.Homepage = url; return p }

// WithURL sets the download URL template used for version extrapolation
// (§3.2.3: "Spack can extrapolate URLs from versions").
func (p *Package) WithURL(url string) *Package { p.URLTemplate = url; return p }

// WithVersion registers a known ("safe") version with its MD5 checksum.
func (p *Package) WithVersion(v, md5 string, opts ...VersionOption) *Package {
	vi := VersionInfo{Version: version.MustParse(v), MD5: md5}
	for _, o := range opts {
		o(&vi)
	}
	p.VersionInfos = append(p.VersionInfos, vi)
	return p
}

// VersionOption customizes a version directive.
type VersionOption func(*VersionInfo)

// VersionURL overrides the download URL for one version.
func VersionURL(url string) VersionOption { return func(v *VersionInfo) { v.URL = url } }

// Deprecated marks a version the concretizer must not choose on its own;
// only an explicit user pin selects it.
func Deprecated() VersionOption { return func(v *VersionInfo) { v.Deprecated = true } }

// DependsOn adds a dependency constraint, itself written in spec syntax
// ("callpath", "boost@1.54.0", "mpi@2:"). Options add when= predicates.
func (p *Package) DependsOn(constraint string, opts ...DepOption) *Package {
	c, err := syntax.Parse(constraint)
	if err != nil {
		panic(fmt.Sprintf("pkg %s: bad depends_on %q: %v", p.Name, constraint, err))
	}
	d := Dependency{Constraint: c}
	for _, o := range opts {
		o(&d)
	}
	p.Dependencies = append(p.Dependencies, d)
	return p
}

// DepOption customizes a dependency directive.
type DepOption func(*Dependency)

// When gates a dependency on a spec predicate, e.g.
// DependsOn("boost@1.54.0", When("%gcc@:4")).
func When(predicate string) DepOption {
	w := syntax.MustParse(predicate)
	return func(d *Dependency) { d.When = w }
}

// BuildOnly marks the dependency as build-time only.
func BuildOnly() DepOption { return func(d *Dependency) { d.BuildOnly = true } }

// ProvidesVirtual declares that this package implements a (versioned)
// virtual interface, optionally gated: ProvidesVirtual("mpi@:2.2", "@1.9").
// An empty when string means unconditional.
func (p *Package) ProvidesVirtual(virtual, when string) *Package {
	v, err := syntax.Parse(virtual)
	if err != nil {
		panic(fmt.Sprintf("pkg %s: bad provides %q: %v", p.Name, virtual, err))
	}
	pr := Provided{Virtual: v}
	if when != "" {
		pr.When = syntax.MustParse(when)
	}
	p.Provides = append(p.Provides, pr)
	return p
}

// WithVariant declares a boolean variant and its default.
func (p *Package) WithVariant(name string, def bool, description string) *Package {
	p.Variants = append(p.Variants, Variant{Name: name, Default: def, Description: description})
	return p
}

// WithPatch registers a patch, optionally gated on a when predicate
// (e.g. the Blue Gene/Q compiler patches of §3.2.4).
func (p *Package) WithPatch(name, when string) *Package {
	pa := Patch{Name: name}
	if when != "" {
		pa.When = syntax.MustParse(when)
	}
	p.Patches = append(p.Patches, pa)
	return p
}

// RequiresCompilerFeature declares a needed compiler capability; an empty
// when string means unconditional.
func (p *Package) RequiresCompilerFeature(feature, when string) *Package {
	fr := FeatureRequirement{Feature: feature}
	if when != "" {
		fr.When = syntax.MustParse(when)
	}
	p.Features = append(p.Features, fr)
	return p
}

// FeaturesFor returns the compiler capabilities required under
// configuration s.
func (p *Package) FeaturesFor(s *spec.Spec) []string {
	var out []string
	for _, fr := range p.Features {
		if fr.When != nil && !s.Satisfies(fr.When) {
			continue
		}
		out = append(out, fr.Feature)
	}
	return out
}

// Extends marks this package as an extension of another (§4.2).
func (p *Package) Extends(extendee string) *Package {
	p.Extendee = extendee
	// Extensions also depend on their extendee.
	return p.DependsOn(extendee)
}

// WithBuild sets the simulated build parameters.
func (p *Package) WithBuild(system string, units int) *Package {
	p.BuildSystem = system
	p.BuildUnits = units
	return p
}

// WithArtifacts sets the number of files the install step writes.
func (p *Package) WithArtifacts(n int) *Package {
	p.Artifacts = n
	return p
}

// ArtifactCount returns the effective number of installed files.
func (p *Package) ArtifactCount() int {
	if p.Artifacts > 0 {
		return p.Artifacts
	}
	return p.BuildUnits
}

// OnInstall sets the default install implementation.
func (p *Package) OnInstall(fn InstallFunc) *Package {
	p.defaultIns = fn
	return p
}

// OnInstallWhen registers a specialized install implementation selected when
// the concrete spec satisfies the predicate — the paper's @when decorator
// (Fig. 4). Cases are tested in registration order.
func (p *Package) OnInstallWhen(predicate string, fn InstallFunc) *Package {
	p.installs = append(p.installs, installCase{when: syntax.MustParse(predicate), fn: fn})
	return p
}

// KnownVersions returns the declared, non-deprecated versions sorted
// descending (newest first), the order concretization policies prefer.
// Deprecated versions are excluded: they remain installable by explicit
// pin but are never chosen automatically.
func (p *Package) KnownVersions() []version.Version {
	out := make([]version.Version, 0, len(p.VersionInfos))
	for _, vi := range p.VersionInfos {
		if vi.Deprecated {
			continue
		}
		out = append(out, vi.Version)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) > 0 })
	return out
}

// AllVersions returns every declared version including deprecated ones,
// newest first.
func (p *Package) AllVersions() []version.Version {
	out := make([]version.Version, len(p.VersionInfos))
	for i, vi := range p.VersionInfos {
		out[i] = vi.Version
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) > 0 })
	return out
}

// URLFor computes the download URL for a version: a per-version override
// when declared, otherwise the package's URL template extrapolated from
// its newest non-deprecated version (§3.2.3).
func (p *Package) URLFor(v version.Version) string {
	if vi, ok := p.VersionInfo(v); ok && vi.URL != "" {
		return vi.URL
	}
	if p.URLTemplate == "" {
		return ""
	}
	base := urlTemplateVersion(p)
	if base.IsZero() {
		return p.URLTemplate
	}
	return ExtrapolateURL(p.URLTemplate, base, v)
}

// ExtrapolateURL rewrites a URL template for a different version: every
// occurrence of the old version string (in dotted, underscored, or dashed
// spelling) is replaced with the new one — §3.2.3's "Spack can extrapolate
// URLs from versions, using the package's url attribute as a model".
func ExtrapolateURL(template string, oldV, newV version.Version) string {
	if oldV.IsZero() || oldV.String() == newV.String() {
		return template
	}
	out := strings.ReplaceAll(template, oldV.String(), newV.String())
	for _, sep := range []string{"_", "-"} {
		out = strings.ReplaceAll(out, oldV.Format(sep), newV.Format(sep))
	}
	return out
}

// urlTemplateVersion guesses which declared version the URL template was
// written for: the one whose string appears in the template.
func urlTemplateVersion(p *Package) version.Version {
	for _, vi := range p.VersionInfos {
		if vi.URL == "" && p.URLTemplate != "" &&
			strings.Contains(p.URLTemplate, vi.Version.String()) {
			return vi.Version
		}
	}
	return version.Version{}
}

// VersionInfo returns the directive for an exact declared version.
func (p *Package) VersionInfo(v version.Version) (VersionInfo, bool) {
	for _, vi := range p.VersionInfos {
		if vi.Version.Equal(v) {
			return vi, true
		}
	}
	return VersionInfo{}, false
}

// DependenciesFor evaluates the when-conditions of every dependency against
// a (partially concretized) spec and returns the active constraints. The
// returned specs are clones safe to mutate.
func (p *Package) DependenciesFor(s *spec.Spec) []Dependency {
	var out []Dependency
	for _, d := range p.Dependencies {
		if d.When != nil && !s.Satisfies(d.When) {
			continue
		}
		out = append(out, Dependency{
			Constraint: d.Constraint.Clone(),
			When:       d.When,
			BuildOnly:  d.BuildOnly,
		})
	}
	return out
}

// ProvidesFor returns the virtual specs this package provides under
// configuration s (evaluating provides-when conditions, §3.3).
func (p *Package) ProvidesFor(s *spec.Spec) []*spec.Spec {
	var out []*spec.Spec
	for _, pr := range p.Provides {
		if pr.When != nil && !s.Satisfies(pr.When) {
			continue
		}
		out = append(out, pr.Virtual.Clone())
	}
	return out
}

// ProvidesVirtualName reports whether the package has any provides directive
// for the named virtual, regardless of conditions.
func (p *Package) ProvidesVirtualName(virtual string) bool {
	for _, pr := range p.Provides {
		if pr.Virtual.Name == virtual {
			return true
		}
	}
	return false
}

// PatchesFor returns the patches applicable to configuration s.
func (p *Package) PatchesFor(s *spec.Spec) []Patch {
	var out []Patch
	for _, pa := range p.Patches {
		if pa.When != nil && !s.Satisfies(pa.When) {
			continue
		}
		out = append(out, pa)
	}
	return out
}

// VariantDefault returns the declared default for a variant name.
func (p *Package) VariantDefault(name string) (bool, bool) {
	for _, v := range p.Variants {
		if v.Name == name {
			return v.Default, true
		}
	}
	return false, false
}

// InstallFor performs build-specialization dispatch (Fig. 4): the first
// @when case satisfied by the concrete spec wins; otherwise the default
// implementation; otherwise a generic implementation chosen by BuildSystem.
func (p *Package) InstallFor(s *spec.Spec) InstallFunc {
	for _, c := range p.installs {
		if s.Satisfies(c.when) {
			return c.fn
		}
	}
	if p.defaultIns != nil {
		return p.defaultIns
	}
	if p.BuildSystem == "cmake" {
		return genericCMakeInstall
	}
	return genericAutotoolsInstall
}

// genericAutotoolsInstall is the canonical configure/make/make install
// sequence of Fig. 1.
func genericAutotoolsInstall(ctx BuildContext, s *spec.Spec, prefix string) error {
	if err := ctx.Configure("--prefix=" + prefix); err != nil {
		return err
	}
	if err := ctx.Make(); err != nil {
		return err
	}
	return ctx.Make("install")
}

// genericCMakeInstall is the cmake path of Fig. 4.
func genericCMakeInstall(ctx BuildContext, s *spec.Spec, prefix string) error {
	if err := ctx.WorkingDir("spack-build"); err != nil {
		return err
	}
	args := append([]string{".."}, ctx.StdCmakeArgs()...)
	if err := ctx.CMake(args...); err != nil {
		return err
	}
	if err := ctx.Make(); err != nil {
		return err
	}
	return ctx.Make("install")
}

// Validate checks internal consistency of the definition: versions are
// unique, variants unique, extendee not self.
func (p *Package) Validate() error {
	seen := make(map[string]bool)
	for _, vi := range p.VersionInfos {
		k := vi.Version.String()
		if seen[k] {
			return fmt.Errorf("pkg %s: duplicate version %s", p.Name, k)
		}
		seen[k] = true
	}
	vseen := make(map[string]bool)
	for _, v := range p.Variants {
		if vseen[v.Name] {
			return fmt.Errorf("pkg %s: duplicate variant %s", p.Name, v.Name)
		}
		vseen[v.Name] = true
	}
	if p.Extendee == p.Name {
		return fmt.Errorf("pkg %s: cannot extend itself", p.Name)
	}
	for _, d := range p.Dependencies {
		if d.Constraint.Name == p.Name {
			return fmt.Errorf("pkg %s: depends on itself", p.Name)
		}
	}
	return nil
}
