package spec

import (
	"testing"

	"repro/internal/version"
)

func concreteNode(name, ver, comp, arch string) *Spec {
	s := New(name)
	s.Versions = version.ExactList(version.Parse(ver))
	s.Compiler = Compiler{Name: comp, Versions: version.ExactList(version.Parse("1.0"))}
	s.Arch = arch
	return s
}

func TestDiffIdentical(t *testing.T) {
	a := concreteNode("p", "1.0", "gcc", "linux-x86_64")
	b := concreteNode("p", "1.0", "gcc", "linux-x86_64")
	if d := Diff(a, b); len(d) != 0 {
		t.Errorf("identical specs diff: %+v", d)
	}
}

func TestDiffFields(t *testing.T) {
	a := concreteNode("p", "1.0", "gcc", "linux-x86_64")
	a.SetVariant("debug", true)
	b := concreteNode("p", "2.0", "intel", "bgq")
	b.SetVariant("debug", false)
	b.SetVariant("shared", true)

	diffs := Diff(a, b)
	if len(diffs) != 1 || diffs[0].Name != "p" {
		t.Fatalf("diffs = %+v", diffs)
	}
	byField := make(map[string]FieldDiff)
	for _, f := range diffs[0].Fields {
		byField[f.Field] = f
	}
	if f := byField["version"]; f.A != "1.0" || f.B != "2.0" {
		t.Errorf("version diff = %+v", f)
	}
	if f := byField["compiler"]; f.A != "gcc@1.0" || f.B != "intel@1.0" {
		t.Errorf("compiler diff = %+v", f)
	}
	if f := byField["arch"]; f.A != "linux-x86_64" || f.B != "bgq" {
		t.Errorf("arch diff = %+v", f)
	}
	if f := byField["variant debug"]; f.A != "+debug" || f.B != "~debug" {
		t.Errorf("debug diff = %+v", f)
	}
	if f := byField["variant shared"]; f.A != "unset" || f.B != "+shared" {
		t.Errorf("shared diff = %+v", f)
	}
}

func TestDiffOnlyIn(t *testing.T) {
	a := concreteNode("p", "1.0", "gcc", "x")
	a.AddDep(concreteNode("onlya", "1.0", "gcc", "x"))
	b := concreteNode("p", "1.0", "gcc", "x")
	b.AddDep(concreteNode("onlyb", "1.0", "gcc", "x"))

	diffs := Diff(a, b)
	found := make(map[string]string)
	for _, d := range diffs {
		found[d.Name] = d.OnlyIn
	}
	if found["onlya"] != "a" || found["onlyb"] != "b" {
		t.Errorf("diffs = %+v", diffs)
	}
	// The root differs only through its dependency set: reported via the
	// dependencies pseudo-field.
	for _, d := range diffs {
		if d.Name == "p" {
			if len(d.Fields) != 1 || d.Fields[0].Field != "dependencies" {
				t.Errorf("root diff = %+v", d)
			}
		}
	}
}

func TestDiffExternalSource(t *testing.T) {
	a := concreteNode("p", "1.0", "gcc", "x")
	b := concreteNode("p", "1.0", "gcc", "x")
	b.External = true
	b.Path = "/usr"
	diffs := Diff(a, b)
	if len(diffs) != 1 || len(diffs[0].Fields) != 1 {
		t.Fatalf("diffs = %+v", diffs)
	}
	f := diffs[0].Fields[0]
	if f.Field != "source" || f.A != "store" || f.B != "external:/usr" {
		t.Errorf("source diff = %+v", f)
	}
}
