package spec

import (
	"testing"

	"repro/internal/version"
)

func TestDepTypeString(t *testing.T) {
	tests := []struct {
		t    DepType
		want string
	}{
		{DepBuild, "build"},
		{DepLink, "link"},
		{DepRun, "run"},
		{DepBuild | DepLink, "build,link"},
		{DepBuild | DepLink | DepRun, "build,link,run"},
		{0, "none"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("DepType(%d).String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

func TestAddDepTyped(t *testing.T) {
	s := New("root")
	tool := New("cmake")
	lib := New("zlib")
	if err := s.AddDepTyped(tool, DepBuild); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDep(lib); err != nil {
		t.Fatal(err)
	}
	if got := s.EdgeType("cmake"); got != DepBuild {
		t.Errorf("cmake edge = %v", got)
	}
	if got := s.EdgeType("zlib"); got != DepDefault {
		t.Errorf("zlib edge = %v", got)
	}
	// Re-adding with another type unions.
	if err := s.AddDepTyped(New("cmake"), DepRun); err != nil {
		t.Fatal(err)
	}
	if got := s.EdgeType("cmake"); got != DepBuild|DepRun {
		t.Errorf("merged cmake edge = %v", got)
	}
	// Default entries are not materialized (canonical hash input).
	if _, ok := s.DepTypes["zlib"]; ok {
		t.Error("default edge type should not be stored")
	}
}

func TestLinkDeps(t *testing.T) {
	// root -> cmake (build only), root -> libA (link) -> libB (link),
	// libA -> tool (build only).
	root := New("root")
	cmake := New("cmake")
	libA := New("liba")
	libB := New("libb")
	tool := New("tool")
	root.AddDepTyped(cmake, DepBuild)
	root.AddDep(libA)
	libA.AddDep(libB)
	libA.AddDepTyped(tool, DepBuild)

	got := root.LinkDeps()
	names := make([]string, len(got))
	for i, d := range got {
		names[i] = d.Name
	}
	if len(names) != 2 || names[0] != "liba" || names[1] != "libb" {
		t.Errorf("LinkDeps = %v, want [liba libb]", names)
	}
}

func TestDepTypeChangesHash(t *testing.T) {
	mk := func(t DepType) *Spec {
		s := New("root")
		s.Versions = version.ExactList(version.Parse("1.0"))
		d := New("dep")
		d.Versions = version.ExactList(version.Parse("2.0"))
		s.AddDepTyped(d, t)
		return s
	}
	if mk(DepDefault).DAGHash() == mk(DepBuild).DAGHash() {
		t.Error("edge type must affect the hash")
	}
	if mk(DepBuild).DAGHash() != mk(DepBuild).DAGHash() {
		t.Error("hash not stable")
	}
}

func TestDepTypeSurvivesCloneAndConstrain(t *testing.T) {
	s := New("root")
	s.AddDepTyped(New("cmake"), DepBuild)
	c := s.Clone()
	if c.EdgeType("cmake") != DepBuild {
		t.Error("clone lost edge type")
	}

	// Constrain merges edge types from the other spec.
	o := New("root")
	o.AddDepTyped(New("cmake"), DepRun)
	if err := s.Constrain(o); err != nil {
		t.Fatal(err)
	}
	if got := s.EdgeType("cmake"); got != DepBuild|DepRun {
		t.Errorf("constrained edge = %v", got)
	}

	// A new edge arriving via Constrain carries its type.
	o2 := New("root")
	o2.AddDepTyped(New("flex"), DepBuild)
	if err := s.Constrain(o2); err != nil {
		t.Fatal(err)
	}
	if got := s.EdgeType("flex"); got != DepBuild {
		t.Errorf("new edge type = %v", got)
	}
}
