package spec

import (
	"sort"

	"repro/internal/version"
)

// ConstraintKind classifies one reified input constraint of an abstract
// spec — the unit of blame for minimal unsat cores: the concretizer asks
// which of these, when dropped, make an UNSAT input satisfiable.
type ConstraintKind string

// Constraint kinds.
const (
	// ConstraintVersion is an @... clause.
	ConstraintVersion ConstraintKind = "version"
	// ConstraintCompiler is a %... clause.
	ConstraintCompiler ConstraintKind = "compiler"
	// ConstraintVariant is a +name/~name clause.
	ConstraintVariant ConstraintKind = "variant"
	// ConstraintArch is an =arch clause.
	ConstraintArch ConstraintKind = "arch"
	// ConstraintDep is a ^dep edge (the whole dependency subtree).
	ConstraintDep ConstraintKind = "dep"
)

// NodeConstraint names one removable constraint of an abstract spec: the
// node it attaches to, its kind, and enough detail to drop or render it.
type NodeConstraint struct {
	// Node is the name of the node carrying the constraint.
	Node string
	// Kind classifies the constraint.
	Kind ConstraintKind
	// Variant is the variant name for ConstraintVariant.
	Variant string
	// Dep is the child node name for ConstraintDep.
	Dep string
	// Detail is the human rendering ("hwloc2@1.7", "mpileaks%intel",
	// "callpath+debug", "libelf=bgq", "mpileaks ^openmpi").
	Detail string
}

// Constraints reifies every user-visible constraint of an abstract spec
// into a flat, deterministic list: per node the version, compiler, variant,
// and arch clauses, plus each dependency edge. The root node's name itself
// is not a constraint (there is no spec without it). Dependency edges are
// reported for the parent that carries them; a ^dep node's own clauses are
// reported against that node, so dropping an edge and dropping the dep's
// version pin are distinct facts.
func (s *Spec) Constraints() []NodeConstraint {
	var out []NodeConstraint
	for _, n := range s.Nodes() {
		if v := n.Versions.String(); v != "" && !n.Versions.IsAny() {
			out = append(out, NodeConstraint{
				Node: n.Name, Kind: ConstraintVersion,
				Detail: n.Name + "@" + v,
			})
		}
		if !n.Compiler.IsZero() {
			out = append(out, NodeConstraint{
				Node: n.Name, Kind: ConstraintCompiler,
				Detail: n.Name + "%" + n.Compiler.String(),
			})
		}
		names := make([]string, 0, len(n.Variants))
		for name := range n.Variants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, NodeConstraint{
				Node: n.Name, Kind: ConstraintVariant, Variant: name,
				Detail: n.Name + variantString(name, bool(n.Variants[name])),
			})
		}
		if n.Arch != "" {
			out = append(out, NodeConstraint{
				Node: n.Name, Kind: ConstraintArch,
				Detail: n.Name + "=" + n.Arch,
			})
		}
		depNames := make([]string, 0, len(n.Deps))
		for name := range n.Deps {
			depNames = append(depNames, name)
		}
		sort.Strings(depNames)
		for _, name := range depNames {
			out = append(out, NodeConstraint{
				Node: n.Name, Kind: ConstraintDep, Dep: name,
				Detail: n.Name + " ^" + name,
			})
		}
	}
	return out
}

// DropConstraint returns a clone of the spec with one reified constraint
// removed. Dropping a dependency edge detaches the child from that parent;
// a child no longer reachable from the root drops out of the DAG entirely.
// Unknown constraints (a node or clause not present) drop nothing.
func (s *Spec) DropConstraint(c NodeConstraint) *Spec {
	out := s.Clone()
	node := out.Dep(c.Node)
	if c.Node == out.Name {
		node = out
	}
	if node == nil {
		return out
	}
	switch c.Kind {
	case ConstraintVersion:
		node.Versions = version.List{}
	case ConstraintCompiler:
		node.Compiler = Compiler{}
	case ConstraintVariant:
		delete(node.Variants, c.Variant)
	case ConstraintArch:
		node.Arch = ""
	case ConstraintDep:
		delete(node.Deps, c.Dep)
		node.SetDepType(c.Dep, DepDefault)
	}
	return out
}
