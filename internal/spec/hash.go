package spec

import (
	"crypto/sha256"
	"encoding/base32"
	"sort"
	"strings"
)

// DAGHash returns a short, stable identifier for the full configuration of
// a spec DAG. Like the paper's SHA-hashed directory component (§3.4.2), it
// covers every parameter of every node plus the edge structure, so two
// builds that differ only in, say, the version of one dependency hash
// differently, while dependency insertion order does not matter (the
// canonical string already sorts nodes and variants). DAGHash is a prefix
// of FullHash, so the two never disagree about identity.
func (s *Spec) DAGHash() string {
	return s.FullHash()[:8]
}

// FullHash is the full-length configuration hash, for provenance records
// and as the spec component of concretizer memo-cache keys.
func (s *Spec) FullHash() string {
	sum := sha256.Sum256([]byte(s.canonicalDAG()))
	enc := base32.StdEncoding.WithPadding(base32.NoPadding)
	return strings.ToLower(enc.EncodeToString(sum[:]))
}

// canonicalDAG serializes the DAG with explicit edges: the plain String()
// rendering flattens dependencies, which would identify DAGs with equal
// node sets but different edge structure.
func (s *Spec) canonicalDAG() string {
	var b strings.Builder
	for _, n := range sortedNodes(s) {
		n.formatNode(&b)
		b.WriteString(" ->")
		for _, d := range n.DirectDeps() {
			b.WriteByte(' ')
			b.WriteString(d.Name)
			if t := n.EdgeType(d.Name); t != DepDefault {
				b.WriteByte('[')
				b.WriteString(t.String())
				b.WriteByte(']')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedNodes(s *Spec) []*Spec {
	nodes := s.Nodes()
	// Keep root first; sort the rest by name for stability (names are
	// unique within a DAG, so the order is total).
	rest := nodes[1:]
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	return nodes
}
