package spec

import (
	"fmt"
	"sort"
	"strings"
)

// DotString renders the DAG in Graphviz DOT format, the way `spack graph
// --dot` visualizes dependency structure (and the source of figures like
// the paper's Fig. 13). Node labels carry the constraint summary; an
// optional classifier colors nodes by category.
func (s *Spec) DotString(classify func(name string) string) string {
	var b strings.Builder
	b.WriteString("digraph G {\n")
	b.WriteString("    rankdir = \"TB\"\n")
	b.WriteString("    node [shape=box, fontname=\"monospace\"]\n")

	nodes := s.Nodes()
	sorted := make([]*Spec, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	for _, n := range sorted {
		var label strings.Builder
		n.formatNode(&label)
		attrs := fmt.Sprintf("label=%q", label.String())
		if classify != nil {
			if c := classify(n.Name); c != "" {
				attrs += fmt.Sprintf(", fillcolor=%q, style=filled", c)
			}
		}
		fmt.Fprintf(&b, "    %q [%s]\n", n.Name, attrs)
	}
	for _, n := range sorted {
		for _, d := range n.DirectDeps() {
			fmt.Fprintf(&b, "    %q -> %q\n", n.Name, d.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
