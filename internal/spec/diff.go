package spec

import "sort"

// FieldDiff is one differing parameter of a node present in both DAGs.
type FieldDiff struct {
	Field string // "version", "compiler", "variant <name>", "arch", ...
	A, B  string
}

// NodeDiff describes how one package differs between two spec DAGs.
type NodeDiff struct {
	Name string
	// OnlyIn is "a" or "b" when the package appears in just one DAG;
	// empty when it appears in both with differing parameters.
	OnlyIn string
	Fields []FieldDiff
}

// Diff compares two spec DAGs package by package — the engine behind a
// `spack diff`-style command: which nodes exist only on one side, and for
// shared nodes, which of the five configuration parameters differ. Equal
// DAGs yield an empty result.
func Diff(a, b *Spec) []NodeDiff {
	aIndex := make(map[string]*Spec)
	a.Traverse(func(n *Spec) bool { aIndex[n.Name] = n; return true })
	bIndex := make(map[string]*Spec)
	b.Traverse(func(n *Spec) bool { bIndex[n.Name] = n; return true })

	names := make(map[string]bool)
	for n := range aIndex {
		names[n] = true
	}
	for n := range bIndex {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var out []NodeDiff
	for _, name := range sorted {
		an, inA := aIndex[name]
		bn, inB := bIndex[name]
		switch {
		case inA && !inB:
			out = append(out, NodeDiff{Name: name, OnlyIn: "a"})
		case !inA && inB:
			out = append(out, NodeDiff{Name: name, OnlyIn: "b"})
		default:
			if fields := diffNodes(an, bn); len(fields) > 0 {
				out = append(out, NodeDiff{Name: name, Fields: fields})
			}
		}
	}
	return out
}

func diffNodes(a, b *Spec) []FieldDiff {
	var out []FieldDiff
	add := func(field, av, bv string) {
		if av != bv {
			out = append(out, FieldDiff{Field: field, A: av, B: bv})
		}
	}
	add("version", a.Versions.String(), b.Versions.String())
	add("compiler", a.Compiler.String(), b.Compiler.String())
	add("arch", a.Arch, b.Arch)

	variantNames := make(map[string]bool)
	for n := range a.Variants {
		variantNames[n] = true
	}
	for n := range b.Variants {
		variantNames[n] = true
	}
	var vs []string
	for n := range variantNames {
		vs = append(vs, n)
	}
	sort.Strings(vs)
	render := func(s *Spec, name string) string {
		on, ok := s.Variant(name)
		if !ok {
			return "unset"
		}
		return variantString(name, on)
	}
	for _, n := range vs {
		add("variant "+n, render(a, n), render(b, n))
	}

	if a.External != b.External || a.Path != b.Path {
		renderExt := func(s *Spec) string {
			if !s.External {
				return "store"
			}
			return "external:" + s.Path
		}
		add("source", renderExt(a), renderExt(b))
	}
	// Dependency hash summarizes sub-DAG differences even when node-local
	// parameters agree.
	if len(out) == 0 && a.DAGHash() != b.DAGHash() {
		add("dependencies", a.DAGHash(), b.DAGHash())
	}
	return out
}
