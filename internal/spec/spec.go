// Package spec implements Spack-style build specifications (SC'15 §3.2):
// directed acyclic graphs of package nodes, each carrying the five
// configuration parameters of the paper — version, compiler, compiler
// version, variants, and target architecture — plus named dependencies.
//
// A Spec may be abstract (partially constrained, possibly naming virtual
// packages) or concrete (every parameter pinned, no virtuals). Constrain
// intersects two specs' constraints; Satisfies tests constraint entailment.
// Within one DAG a package name identifies a unique node (the paper's
// "single version per package" guarantee).
package spec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/version"
)

// VariantValue is the tri-state setting of a named build option: explicitly
// enabled, explicitly disabled, or (by absence from the map) unset.
type VariantValue bool

// DepType classifies a dependency edge: needed to build (tools like
// cmake), to link (libraries whose paths go into RPATHs), or to run.
// Absent edge-type metadata means the default build+link.
type DepType uint8

// Dependency edge classifications.
const (
	// DepBuild marks build-time-only tool dependencies.
	DepBuild DepType = 1 << iota
	// DepLink marks libraries linked into the result (RPATH targets).
	DepLink
	// DepRun marks runtime-only dependencies (PATH at run time).
	DepRun
)

// DepDefault is the edge type of ordinary library dependencies.
const DepDefault = DepBuild | DepLink

// String renders the type set ("build,link").
func (t DepType) String() string {
	var parts []string
	if t&DepBuild != 0 {
		parts = append(parts, "build")
	}
	if t&DepLink != 0 {
		parts = append(parts, "link")
	}
	if t&DepRun != 0 {
		parts = append(parts, "run")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Compiler constrains the toolchain used to build a node: a name like "gcc"
// and an optional version list. The zero Compiler is unconstrained.
type Compiler struct {
	Name     string
	Versions version.List
}

// IsZero reports whether no compiler constraint is present.
func (c Compiler) IsZero() bool { return c.Name == "" }

// Concrete reports whether the compiler is pinned to a single name+version.
func (c Compiler) Concrete() bool {
	if c.Name == "" {
		return false
	}
	_, ok := c.Versions.Concrete()
	return ok
}

// String renders the compiler constraint in spec syntax ("%gcc@4.7.3").
func (c Compiler) String() string {
	if c.Name == "" {
		return ""
	}
	if v := c.Versions.String(); v != "" {
		return c.Name + "@" + v
	}
	return c.Name
}

// Satisfies reports whether c (the more concrete constraint) entails o.
func (c Compiler) Satisfies(o Compiler) bool {
	if o.IsZero() {
		return true
	}
	if c.Name != o.Name {
		return false
	}
	return c.Versions.Satisfies(o.Versions)
}

// Intersect merges two compiler constraints, failing on conflicting names
// or disjoint version lists.
func (c Compiler) Intersect(o Compiler) (Compiler, error) {
	if c.IsZero() {
		return o, nil
	}
	if o.IsZero() {
		return c, nil
	}
	if c.Name != o.Name {
		return Compiler{}, &ConflictError{Field: "compiler", A: c.Name, B: o.Name}
	}
	vs, ok := c.Versions.Intersect(o.Versions)
	if !ok {
		return Compiler{}, &ConflictError{
			Field: "compiler version", A: c.Name + "@" + c.Versions.String(),
			B: o.Name + "@" + o.Versions.String(),
		}
	}
	return Compiler{Name: c.Name, Versions: vs}, nil
}

// ConflictError reports an inconsistency discovered while intersecting two
// specs, e.g. two different compilers requested for one package (§3.4).
type ConflictError struct {
	Package string // package whose node conflicted, if known
	Field   string // "version", "compiler", "variant foo", "architecture"
	A, B    string // the two irreconcilable constraints
}

func (e *ConflictError) Error() string {
	where := ""
	if e.Package != "" {
		where = " for package " + e.Package
	}
	return fmt.Sprintf("spec: conflicting %s%s: %q vs %q", e.Field, where, e.A, e.B)
}

// A Spec is one node of a build-specification DAG together with its
// dependency edges. The root Spec represents the package being requested;
// Deps maps dependency package names to their (shared) nodes.
type Spec struct {
	Name      string
	Versions  version.List
	Compiler  Compiler
	Variants  map[string]VariantValue
	Arch      string
	Namespace string // repository namespace that provided the package, once resolved

	Deps map[string]*Spec
	// DepTypes classifies edges by dependency name; names absent from the
	// map use DepDefault (build+link).
	DepTypes map[string]DepType

	// External marks a node satisfied by a system install outside the store
	// (e.g. a vendor MPI); Path records where.
	External bool
	Path     string
}

// New returns an empty abstract spec for a package name.
func New(name string) *Spec {
	return &Spec{Name: name}
}

// EnsureMaps lazily allocates the Variants and Deps maps.
func (s *Spec) EnsureMaps() {
	if s.Variants == nil {
		s.Variants = make(map[string]VariantValue)
	}
	if s.Deps == nil {
		s.Deps = make(map[string]*Spec)
	}
}

// SetVariant records an explicit +name or ~name setting.
func (s *Spec) SetVariant(name string, on bool) {
	if s.Variants == nil {
		s.Variants = make(map[string]VariantValue)
	}
	s.Variants[name] = VariantValue(on)
}

// Variant returns the setting of a variant and whether it is set.
func (s *Spec) Variant(name string) (bool, bool) {
	v, ok := s.Variants[name]
	return bool(v), ok
}

// AddDep attaches (or merges) a dependency node by name, preserving the
// single-node-per-name invariant. If a node of the same name exists, the
// constraints are intersected. The edge gets the default build+link type.
func (s *Spec) AddDep(d *Spec) error {
	return s.AddDepTyped(d, DepDefault)
}

// AddDepTyped is AddDep with an explicit edge type; merging an existing
// edge unions the type sets.
func (s *Spec) AddDepTyped(d *Spec, t DepType) error {
	if s.Deps == nil {
		s.Deps = make(map[string]*Spec)
	}
	if existing, ok := s.Deps[d.Name]; ok {
		s.SetDepType(d.Name, s.EdgeType(d.Name)|t)
		return existing.Constrain(d)
	}
	s.Deps[d.Name] = d
	s.SetDepType(d.Name, t)
	return nil
}

// EdgeType returns the classification of the edge to a direct dependency
// (DepDefault when unrecorded).
func (s *Spec) EdgeType(name string) DepType {
	if t, ok := s.DepTypes[name]; ok {
		return t
	}
	return DepDefault
}

// SetDepType records an edge classification; setting the default removes
// the entry so hashes stay canonical.
func (s *Spec) SetDepType(name string, t DepType) {
	if t == DepDefault {
		delete(s.DepTypes, name)
		return
	}
	if s.DepTypes == nil {
		s.DepTypes = make(map[string]DepType)
	}
	s.DepTypes[name] = t
}

// LinkDeps returns the nodes reachable from s through link-type edges
// (excluding s), name-sorted: the set whose lib directories belong in
// RPATHs and -L flags (§3.5.2).
func (s *Spec) LinkDeps() []*Spec {
	seen := map[string]bool{s.Name: true}
	var out []*Spec
	var walk func(n *Spec)
	walk = func(n *Spec) {
		for _, d := range n.DirectDeps() {
			if n.EdgeType(d.Name)&DepLink == 0 {
				continue
			}
			if seen[d.Name] {
				continue
			}
			seen[d.Name] = true
			out = append(out, d)
			walk(d)
		}
	}
	walk(s)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dep returns the named dependency node anywhere in s's DAG (not just
// direct edges), since a name identifies a unique node per DAG.
func (s *Spec) Dep(name string) *Spec {
	var found *Spec
	s.Traverse(func(n *Spec) bool {
		if n.Name == name {
			found = n
			return false
		}
		return true
	})
	return found
}

// DirectDeps returns the direct dependency nodes sorted by name.
func (s *Spec) DirectDeps() []*Spec {
	names := make([]string, 0, len(s.Deps))
	for n := range s.Deps {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Spec, len(names))
	for i, n := range names {
		out[i] = s.Deps[n]
	}
	return out
}

// Traverse visits every node of the DAG (root first, then dependencies in
// name order) exactly once. The visitor returns false to stop early.
func (s *Spec) Traverse(visit func(*Spec) bool) {
	seen := make(map[string]bool)
	var walk func(*Spec) bool
	walk = func(n *Spec) bool {
		if seen[n.Name] {
			return true
		}
		seen[n.Name] = true
		if !visit(n) {
			return false
		}
		for _, d := range n.DirectDeps() {
			if !walk(d) {
				return false
			}
		}
		return true
	}
	walk(s)
}

// Nodes returns all nodes of the DAG in deterministic pre-order.
func (s *Spec) Nodes() []*Spec {
	var out []*Spec
	s.Traverse(func(n *Spec) bool {
		out = append(out, n)
		return true
	})
	return out
}

// Size returns the number of nodes in the DAG.
func (s *Spec) Size() int {
	n := 0
	s.Traverse(func(*Spec) bool { n++; return true })
	return n
}

// TopoOrder returns the nodes bottom-up: every node appears after all of its
// dependencies, so installing in slice order satisfies prerequisites
// (§3.4's bottom-up install traversal).
func (s *Spec) TopoOrder() []*Spec {
	var out []*Spec
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var walk func(*Spec)
	walk = func(n *Spec) {
		if state[n.Name] != 0 {
			return
		}
		state[n.Name] = 1
		for _, d := range n.DirectDeps() {
			walk(d)
		}
		state[n.Name] = 2
		out = append(out, n)
	}
	walk(s)
	return out
}

// ConcreteVersion returns the pinned version of a concrete node.
func (s *Spec) ConcreteVersion() (version.Version, bool) {
	return s.Versions.Concrete()
}

// NodeConcrete reports whether this node (ignoring dependencies) has all
// five parameters pinned: version, compiler+version, architecture. Variants
// are considered concrete when present (unset variants are filled during
// concretization, so callers decide defaults before checking).
func (s *Spec) NodeConcrete() bool {
	if s.Name == "" {
		return false
	}
	if _, ok := s.Versions.Concrete(); !ok {
		return false
	}
	if s.External {
		return s.Arch != "" // externals carry no compiler of their own
	}
	return s.Compiler.Concrete() && s.Arch != ""
}

// Concrete reports whether every node in the DAG is concrete (§3.4's three
// criteria 1 and 3; criterion 2 — no virtuals — is checked by the
// concretizer, which knows the repository).
func (s *Spec) Concrete() bool {
	ok := true
	s.Traverse(func(n *Spec) bool {
		if !n.NodeConcrete() {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// constrainNode intersects o's node-level constraints into s (not touching
// dependencies). It reports whether s changed.
func (s *Spec) constrainNode(o *Spec) (bool, error) {
	changed := false
	if s.Name == "" {
		s.Name = o.Name
		changed = o.Name != ""
	} else if o.Name != "" && s.Name != o.Name {
		return false, &ConflictError{Field: "package name", A: s.Name, B: o.Name}
	}
	if !o.Versions.IsAny() {
		merged, ok := s.Versions.Intersect(o.Versions)
		if !ok {
			return false, &ConflictError{
				Package: s.Name, Field: "version",
				A: s.Versions.String(), B: o.Versions.String(),
			}
		}
		if merged.String() != s.Versions.String() {
			s.Versions = merged
			changed = true
		}
	}
	if !o.Compiler.IsZero() {
		merged, err := s.Compiler.Intersect(o.Compiler)
		if err != nil {
			if ce, ok := err.(*ConflictError); ok {
				ce.Package = s.Name
			}
			return false, err
		}
		if merged.String() != s.Compiler.String() {
			s.Compiler = merged
			changed = true
		}
	}
	for name, val := range o.Variants {
		if cur, ok := s.Variants[name]; ok {
			if cur != val {
				return false, &ConflictError{
					Package: s.Name, Field: "variant " + name,
					A: variantString(name, bool(cur)), B: variantString(name, bool(val)),
				}
			}
		} else {
			s.SetVariant(name, bool(val))
			changed = true
		}
	}
	if o.Arch != "" {
		if s.Arch == "" {
			s.Arch = o.Arch
			changed = true
		} else if s.Arch != o.Arch {
			return false, &ConflictError{Package: s.Name, Field: "architecture", A: s.Arch, B: o.Arch}
		}
	}
	if o.External {
		if !s.External {
			s.External = true
			s.Path = o.Path
			changed = true
		} else if o.Path != "" && s.Path != "" && o.Path != s.Path {
			return false, &ConflictError{Package: s.Name, Field: "external path", A: s.Path, B: o.Path}
		}
	}
	if o.Namespace != "" && s.Namespace == "" {
		s.Namespace = o.Namespace
	}
	return changed, nil
}

// Constrain merges all constraints of o into s, package by package across
// both DAGs (the paper's constraint-intersection step, Fig. 6). Dependency
// nodes are matched by name regardless of DAG position. On conflict an error
// is returned and s may be partially updated.
func (s *Spec) Constrain(o *Spec) error {
	_, err := s.ConstrainChanged(o)
	return err
}

// ConstrainChanged is Constrain, also reporting whether anything changed —
// the concretizer's fixed-point loop uses this to detect quiescence.
func (s *Spec) ConstrainChanged(o *Spec) (bool, error) {
	// Index every node of s's DAG by name.
	index := make(map[string]*Spec)
	s.Traverse(func(n *Spec) bool {
		index[n.Name] = n
		return true
	})
	// An anonymous constraint root (a `when=` predicate like "%gcc@:4")
	// applies to s's root node.
	nodeKey := func(on *Spec) string {
		if on == o && on.Name == "" {
			return s.Name
		}
		return on.Name
	}
	changed := false
	var werr error
	o.Traverse(func(on *Spec) bool {
		target, ok := index[nodeKey(on)]
		if !ok {
			// New dependency subtree: clone and attach under the node that
			// references it in o, or under the root if unreferenced there.
			return true // handled in the edge pass below
		}
		c, err := target.constrainNode(on)
		if err != nil {
			werr = err
			return false
		}
		changed = changed || c
		return true
	})
	if werr != nil {
		return changed, werr
	}
	// Edge pass: replicate o's edges into s, attaching clones of missing
	// nodes. Process o's nodes top-down so parents exist before children.
	for _, on := range o.Nodes() {
		parent, ok := index[nodeKey(on)]
		if !ok {
			continue // will be attached when its parent edge is processed
		}
		for _, od := range on.DirectDeps() {
			oType := on.EdgeType(od.Name)
			if existing, ok := index[od.Name]; ok {
				if parent.Deps == nil {
					parent.Deps = make(map[string]*Spec)
				}
				if _, has := parent.Deps[od.Name]; !has {
					parent.Deps[od.Name] = existing
					parent.SetDepType(od.Name, oType)
					changed = true
				} else if merged := parent.EdgeType(od.Name) | oType; merged != parent.EdgeType(od.Name) {
					parent.SetDepType(od.Name, merged)
					changed = true
				}
			} else {
				clone := od.cloneNodeOnly()
				if parent.Deps == nil {
					parent.Deps = make(map[string]*Spec)
				}
				parent.Deps[od.Name] = clone
				parent.SetDepType(od.Name, oType)
				index[od.Name] = clone
				changed = true
			}
		}
	}
	return changed, nil
}

// cloneNodeOnly copies a node's parameters without its edges.
func (s *Spec) cloneNodeOnly() *Spec {
	c := &Spec{
		Name:      s.Name,
		Versions:  s.Versions,
		Compiler:  s.Compiler,
		Arch:      s.Arch,
		Namespace: s.Namespace,
		External:  s.External,
		Path:      s.Path,
	}
	if s.Variants != nil {
		c.Variants = make(map[string]VariantValue, len(s.Variants))
		for k, v := range s.Variants {
			c.Variants[k] = v
		}
	}
	return c
}

// Clone deep-copies the DAG, preserving node sharing.
func (s *Spec) Clone() *Spec {
	clones := make(map[string]*Spec)
	var walk func(*Spec) *Spec
	walk = func(n *Spec) *Spec {
		if c, ok := clones[n.Name]; ok {
			return c
		}
		c := n.cloneNodeOnly()
		clones[n.Name] = c
		for name, d := range n.Deps {
			if c.Deps == nil {
				c.Deps = make(map[string]*Spec)
			}
			c.Deps[name] = walk(d)
		}
		for name, t := range n.DepTypes {
			c.SetDepType(name, t)
		}
		return c
	}
	return walk(s)
}

// satisfiesNode checks node-level entailment: does s's (tighter) constraint
// imply o's?
func (s *Spec) satisfiesNode(o *Spec) bool {
	if o.Name != "" && s.Name != o.Name {
		return false
	}
	if !s.Versions.Satisfies(o.Versions) {
		return false
	}
	if !s.Compiler.Satisfies(o.Compiler) {
		return false
	}
	for name, want := range o.Variants {
		got, ok := s.Variants[name]
		if !ok || got != want {
			return false
		}
	}
	if o.Arch != "" && s.Arch != o.Arch {
		return false
	}
	return true
}

// Satisfies reports whether s meets every constraint expressed by o: the
// root nodes must be compatible and, for each named node in o's DAG, s's
// DAG must contain a node of the same name whose constraints entail it.
// This is the operator behind `when=` predicates and install-time queries
// (§3.2.4).
func (s *Spec) Satisfies(o *Spec) bool {
	if !s.satisfiesNode(o) {
		return false
	}
	index := make(map[string]*Spec)
	s.Traverse(func(n *Spec) bool {
		index[n.Name] = n
		return true
	})
	ok := true
	o.Traverse(func(on *Spec) bool {
		if on == o {
			return true // root handled above
		}
		sn, has := index[on.Name]
		if !has || !sn.satisfiesNode(on) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Compatible reports whether the constraints of s and o can hold at once
// (their intersection is satisfiable). Unlike Satisfies it is symmetric.
func (s *Spec) Compatible(o *Spec) bool {
	c := s.Clone()
	return c.Constrain(o) == nil
}

func variantString(name string, on bool) string {
	if on {
		return "+" + name
	}
	return "~" + name
}

// format renders one node's constraints in spec syntax.
func (s *Spec) formatNode(b *strings.Builder) {
	b.WriteString(s.Name)
	if v := s.Versions.String(); v != "" {
		b.WriteByte('@')
		b.WriteString(v)
	}
	if c := s.Compiler.String(); c != "" {
		b.WriteByte('%')
		b.WriteString(c)
	}
	names := make([]string, 0, len(s.Variants))
	for n := range s.Variants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if s.Variants[n] {
			b.WriteByte('+')
		} else {
			b.WriteByte('~')
		}
		b.WriteString(n)
	}
	if s.Arch != "" {
		b.WriteByte('=')
		b.WriteString(s.Arch)
	}
	if s.External {
		b.WriteString(" [external")
		if s.Path != "" {
			b.WriteByte(':')
			b.WriteString(s.Path)
		}
		b.WriteByte(']')
	}
}

// String renders the full spec in the paper's command-line syntax: the root
// node followed by ^dep clauses for every other node of the DAG, in
// dependency-name order. The rendering is canonical: equal DAGs produce
// equal strings.
func (s *Spec) String() string {
	var b strings.Builder
	s.formatNode(&b)
	rest := make([]*Spec, 0)
	s.Traverse(func(n *Spec) bool {
		if n != s {
			rest = append(rest, n)
		}
		return true
	})
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	for _, n := range rest {
		b.WriteString(" ^")
		n.formatNode(&b)
	}
	return b.String()
}

// TreeString renders the DAG as an indented tree for human inspection, the
// way `spack spec` prints concretized output (Fig. 7). Non-default
// dependency edges are annotated with their type ("[build]").
func (s *Spec) TreeString() string {
	var b strings.Builder
	seen := make(map[string]bool)
	var walk func(n *Spec, depth int, edge DepType)
	walk = func(n *Spec, depth int, edge DepType) {
		b.WriteString(strings.Repeat("    ", depth))
		if depth > 0 {
			b.WriteString("^")
		}
		var nb strings.Builder
		n.formatNode(&nb)
		b.WriteString(nb.String())
		if depth > 0 && edge != DepDefault {
			b.WriteString(" [" + edge.String() + "]")
		}
		b.WriteByte('\n')
		if seen[n.Name] {
			return
		}
		seen[n.Name] = true
		for _, d := range n.DirectDeps() {
			walk(d, depth+1, n.EdgeType(d.Name))
		}
	}
	walk(s, 0, DepDefault)
	return b.String()
}
