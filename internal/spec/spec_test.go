package spec

import (
	"strings"
	"testing"

	"repro/internal/version"
)

func mustList(t *testing.T, s string) version.List {
	t.Helper()
	l, err := version.ParseList(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCompilerSatisfies(t *testing.T) {
	gcc47 := Compiler{Name: "gcc", Versions: mustList(t, "4.7.3")}
	gcc := Compiler{Name: "gcc"}
	intel := Compiler{Name: "intel"}
	if !gcc47.Satisfies(gcc) {
		t.Error("gcc@4.7.3 should satisfy gcc")
	}
	if gcc.Satisfies(gcc47) {
		t.Error("gcc should not satisfy gcc@4.7.3")
	}
	if gcc47.Satisfies(intel) {
		t.Error("gcc should not satisfy intel")
	}
	if !gcc47.Satisfies(Compiler{}) {
		t.Error("anything satisfies the empty compiler constraint")
	}
}

func TestCompilerIntersect(t *testing.T) {
	a := Compiler{Name: "gcc", Versions: mustList(t, "4:5")}
	b := Compiler{Name: "gcc", Versions: mustList(t, "4.7:")}
	m, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "gcc@4.7:5" {
		t.Errorf("merged = %q", m.String())
	}
	if _, err := a.Intersect(Compiler{Name: "intel"}); err == nil {
		t.Error("different compiler names should conflict")
	}
	if m, err := a.Intersect(Compiler{}); err != nil || m.Name != "gcc" {
		t.Error("intersect with zero compiler is identity")
	}
}

func buildMpileaks() *Spec {
	// mpileaks -> callpath -> dyninst -> {libdwarf -> libelf, libelf}
	//          -> mpi (virtual placeholder node)
	libelf := New("libelf")
	libdwarf := New("libdwarf")
	libdwarf.AddDep(libelf)
	dyninst := New("dyninst")
	dyninst.AddDep(libdwarf)
	dyninst.AddDep(libelf)
	callpath := New("callpath")
	callpath.AddDep(dyninst)
	mpi := New("mpi")
	callpath.AddDep(mpi)
	root := New("mpileaks")
	root.AddDep(callpath)
	root.AddDep(mpi)
	return root
}

func TestDAGStructure(t *testing.T) {
	s := buildMpileaks()
	if s.Size() != 6 {
		t.Errorf("Size = %d, want 6", s.Size())
	}
	// libelf must be a single shared node.
	if s.Dep("libdwarf").Deps["libelf"] != s.Dep("dyninst").Deps["libelf"] {
		t.Error("libelf node must be shared within the DAG")
	}
	topo := s.TopoOrder()
	pos := make(map[string]int)
	for i, n := range topo {
		pos[n.Name] = i
	}
	deps := map[string][]string{
		"mpileaks": {"callpath", "mpi"},
		"callpath": {"dyninst", "mpi"},
		"dyninst":  {"libdwarf", "libelf"},
		"libdwarf": {"libelf"},
	}
	for pkg, reqs := range deps {
		for _, r := range reqs {
			if pos[r] >= pos[pkg] {
				t.Errorf("topological order violated: %s at %d, dep %s at %d",
					pkg, pos[pkg], r, pos[r])
			}
		}
	}
}

func TestConstrainMergesVersions(t *testing.T) {
	a := New("mpileaks")
	a.Versions = mustList(t, "1.2:1.4")
	b := New("mpileaks")
	b.Versions = mustList(t, "1.3:")
	if err := a.Constrain(b); err != nil {
		t.Fatal(err)
	}
	if a.Versions.String() != "1.3:1.4" {
		t.Errorf("merged versions = %q", a.Versions.String())
	}
}

func TestConstrainConflicts(t *testing.T) {
	a := New("p")
	a.Versions = mustList(t, "1.2")
	b := New("p")
	b.Versions = mustList(t, "2.0")
	err := a.Constrain(b)
	if err == nil {
		t.Fatal("expected version conflict")
	}
	ce, ok := err.(*ConflictError)
	if !ok {
		t.Fatalf("want *ConflictError, got %T: %v", err, err)
	}
	if ce.Package != "p" || ce.Field != "version" {
		t.Errorf("conflict = %+v", ce)
	}
	if !strings.Contains(ce.Error(), "version") {
		t.Errorf("error text = %q", ce.Error())
	}
}

func TestConstrainVariantConflict(t *testing.T) {
	a := New("p")
	a.SetVariant("debug", true)
	b := New("p")
	b.SetVariant("debug", false)
	if err := a.Constrain(b); err == nil {
		t.Error("expected variant conflict")
	}
}

func TestConstrainArchConflict(t *testing.T) {
	a := New("p")
	a.Arch = "bgq"
	b := New("p")
	b.Arch = "linux-x86_64"
	if err := a.Constrain(b); err == nil {
		t.Error("expected arch conflict")
	}
}

func TestConstrainAddsDeps(t *testing.T) {
	a := New("mpileaks")
	b := New("mpileaks")
	cp := New("callpath")
	cp.Versions = mustList(t, "1.1")
	b.AddDep(cp)
	if err := a.Constrain(b); err != nil {
		t.Fatal(err)
	}
	got := a.Deps["callpath"]
	if got == nil || got.Versions.String() != "1.1" {
		t.Errorf("callpath dep = %v", got)
	}
}

func TestConstrainMatchesDepsByNameAnywhere(t *testing.T) {
	// Constraint placed on a transitive dependency merges with the node
	// wherever it sits in the DAG (§3.2.3: user needn't know connectivity).
	s := buildMpileaks()
	c := New("mpileaks")
	libelf := New("libelf")
	libelf.Versions = mustList(t, "0.8.11")
	c.AddDep(libelf)
	if err := s.Constrain(c); err != nil {
		t.Fatal(err)
	}
	if got := s.Dep("libelf").Versions.String(); got != "0.8.11" {
		t.Errorf("libelf version = %q", got)
	}
	// libelf must still be the shared node, and must NOT have become a
	// direct dep duplicate: name appears once in DAG.
	count := 0
	s.Traverse(func(n *Spec) bool {
		if n.Name == "libelf" {
			count++
		}
		return true
	})
	if count != 1 {
		t.Errorf("libelf node count = %d", count)
	}
}

func TestConstrainChangedFixedPoint(t *testing.T) {
	a := New("p")
	a.Versions = mustList(t, "1.2")
	b := New("p")
	b.Versions = mustList(t, "1.2")
	changed, err := a.ConstrainChanged(b)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("identical constraint should not report change")
	}
}

func TestConstrainIdempotent(t *testing.T) {
	a := New("mpileaks")
	a.Versions = mustList(t, "1.2:1.4")
	a.SetVariant("debug", true)
	b := New("mpileaks")
	b.Compiler = Compiler{Name: "gcc"}
	if err := a.Constrain(b); err != nil {
		t.Fatal(err)
	}
	s1 := a.String()
	changed, err := a.ConstrainChanged(b)
	if err != nil {
		t.Fatal(err)
	}
	if changed || a.String() != s1 {
		t.Error("second constrain must be a no-op")
	}
}

func TestSatisfies(t *testing.T) {
	concrete := New("mpileaks")
	concrete.Versions = version.ExactList(version.Parse("1.3"))
	concrete.Compiler = Compiler{Name: "gcc", Versions: mustList(t, "4.7.3")}
	concrete.SetVariant("debug", true)
	concrete.Arch = "bgq"

	abstract := New("mpileaks")
	abstract.Versions = mustList(t, "1.2:1.4")
	if !concrete.Satisfies(abstract) {
		t.Error("concrete should satisfy looser version range")
	}
	if abstract.Satisfies(concrete) {
		t.Error("loose range should not satisfy pinned version")
	}

	withArch := New("mpileaks")
	withArch.Arch = "bgq"
	if !concrete.Satisfies(withArch) {
		t.Error("matching arch should satisfy")
	}
	withArch.Arch = "linux-x86_64"
	if concrete.Satisfies(withArch) {
		t.Error("different arch should not satisfy")
	}

	anon := New("") // anonymous %gcc predicate
	anon.Compiler = Compiler{Name: "gcc"}
	if !concrete.Satisfies(anon) {
		t.Error("concrete gcc build should satisfy anonymous compiler predicate")
	}
	anon.Compiler = Compiler{Name: "xl"}
	if concrete.Satisfies(anon) {
		t.Error("gcc build should not satisfy xl compiler predicate")
	}
}

func TestSatisfiesDeps(t *testing.T) {
	s := buildMpileaks()
	s.Dep("libelf").Versions = version.ExactList(version.Parse("0.8.11"))

	q := New("mpileaks")
	le := New("libelf")
	le.Versions = mustList(t, "0.8:")
	q.AddDep(le)
	if !s.Satisfies(q) {
		t.Error("DAG with libelf@0.8.11 should satisfy ^libelf@0.8:")
	}
	le.Versions = mustList(t, "0.9:")
	if s.Satisfies(q) {
		t.Error("libelf@0.8.11 should not satisfy ^libelf@0.9:")
	}
	q2 := New("mpileaks")
	q2.AddDep(New("nonexistent"))
	if s.Satisfies(q2) {
		t.Error("missing dep name should not satisfy")
	}
}

func TestSatisfiesReflexiveOnConcrete(t *testing.T) {
	s := New("p")
	s.Versions = version.ExactList(version.Parse("1.0"))
	s.Compiler = Compiler{Name: "gcc", Versions: mustList(t, "4.9")}
	s.Arch = "linux-x86_64"
	s.SetVariant("debug", false)
	if !s.Satisfies(s) {
		t.Error("concrete spec must satisfy itself")
	}
}

func TestCompatible(t *testing.T) {
	a := New("p")
	a.Versions = mustList(t, "1:3")
	b := New("p")
	b.Versions = mustList(t, "2:4")
	if !a.Compatible(b) || !b.Compatible(a) {
		t.Error("overlapping ranges are compatible")
	}
	c := New("p")
	c.Versions = mustList(t, "5:")
	if a.Compatible(c) {
		t.Error("disjoint ranges are incompatible")
	}
	// Compatible must not mutate its receiver.
	if a.Versions.String() != "1:3" {
		t.Error("Compatible mutated receiver")
	}
}

// TestConstrainAnonymous: an anonymous constraint (a when= predicate)
// applies to the receiver's root node — regression test for provider
// when-conditions being silently ignored.
func TestConstrainAnonymous(t *testing.T) {
	s := New("mpich")
	s.Versions = mustList(t, "1.4.1")
	when := New("")
	when.Versions = mustList(t, "3:")
	if err := s.Constrain(when); err == nil {
		t.Error("mpich@1.4.1 constrained by @3: must conflict")
	}

	s2 := New("mpich")
	s2.Versions = mustList(t, "3.1.4")
	if err := s2.Constrain(when); err != nil {
		t.Errorf("mpich@3.1.4 constrained by @3: should merge: %v", err)
	}
	if s2.Versions.String() != "3.1.4" {
		t.Errorf("versions = %q", s2.Versions.String())
	}

	// Compatible respects anonymous constraints too.
	if s.Clone().Compatible(when) {
		t.Error("Compatible must see anonymous root constraints")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := buildMpileaks()
	c := s.Clone()
	c.Dep("libelf").Versions = version.ExactList(version.Parse("9.9"))
	if s.Dep("libelf").Versions.String() == "9.9" {
		t.Error("clone shares state with original")
	}
	if s.String() == c.String() {
		t.Error("strings should differ after mutation")
	}
	// Sharing structure preserved in the clone.
	if c.Dep("libdwarf").Deps["libelf"] != c.Dep("dyninst").Deps["libelf"] {
		t.Error("clone lost node sharing")
	}
}

func TestStringCanonical(t *testing.T) {
	a := New("mpileaks")
	a.SetVariant("debug", true)
	a.SetVariant("static", false)
	a.AddDep(New("zlib"))
	a.AddDep(New("callpath"))

	b := New("mpileaks")
	b.AddDep(New("callpath"))
	b.AddDep(New("zlib"))
	b.SetVariant("static", false)
	b.SetVariant("debug", true)

	if a.String() != b.String() {
		t.Errorf("insertion order changed rendering: %q vs %q", a, b)
	}
	want := "mpileaks+debug~static ^callpath ^zlib"
	if a.String() != want {
		t.Errorf("String = %q, want %q", a, want)
	}
}

func TestConcrete(t *testing.T) {
	s := New("p")
	if s.Concrete() {
		t.Error("fresh spec is not concrete")
	}
	s.Versions = version.ExactList(version.Parse("1.0"))
	s.Compiler = Compiler{Name: "gcc", Versions: mustList(t, "4.9.2")}
	s.Arch = "linux-x86_64"
	if !s.Concrete() {
		t.Error("fully pinned node should be concrete")
	}
	d := New("d")
	s.AddDep(d)
	if s.Concrete() {
		t.Error("unpinned dependency should block concreteness")
	}
	d.Versions = version.ExactList(version.Parse("2.0"))
	d.Compiler = s.Compiler
	d.Arch = "linux-x86_64"
	if !s.Concrete() {
		t.Error("all nodes pinned should be concrete")
	}
}

func TestExternalNodeConcrete(t *testing.T) {
	s := New("mvapich2")
	s.Versions = version.ExactList(version.Parse("1.9"))
	s.External = true
	s.Path = "/usr/local/tools/mvapich2"
	s.Arch = "linux-x86_64"
	if !s.NodeConcrete() {
		t.Error("external node with version+arch should be concrete")
	}
	if !strings.Contains(s.String(), "[external:/usr/local/tools/mvapich2]") {
		t.Errorf("String = %q", s.String())
	}
}

func TestHashStability(t *testing.T) {
	a := buildMpileaks()
	b := buildMpileaks()
	if a.DAGHash() != b.DAGHash() {
		t.Error("identical DAGs must hash equal")
	}
	b.Dep("libelf").Versions = version.ExactList(version.Parse("0.8.13"))
	if a.DAGHash() == b.DAGHash() {
		t.Error("parameter change must change the hash")
	}
	if len(a.DAGHash()) != 8 {
		t.Errorf("short hash length = %d", len(a.DAGHash()))
	}
	if len(a.FullHash()) < 32 {
		t.Errorf("full hash too short: %d", len(a.FullHash()))
	}
}

func TestHashEdgeSensitivity(t *testing.T) {
	// Same node set, different edges, must hash differently.
	x1, y1, z1 := New("x"), New("y"), New("z")
	x1.AddDep(y1)
	y1.AddDep(z1)

	x2, y2, z2 := New("x"), New("y"), New("z")
	x2.AddDep(y2)
	x2.AddDep(z2)

	if x1.DAGHash() == x2.DAGHash() {
		t.Error("different edge structure must change hash")
	}
}

func TestTreeString(t *testing.T) {
	s := buildMpileaks()
	tree := s.TreeString()
	if !strings.HasPrefix(tree, "mpileaks\n") {
		t.Errorf("tree = %q", tree)
	}
	if !strings.Contains(tree, "^callpath") || !strings.Contains(tree, "^libelf") {
		t.Errorf("tree missing deps:\n%s", tree)
	}
}

func TestVariantHelpers(t *testing.T) {
	s := New("p")
	if _, ok := s.Variant("debug"); ok {
		t.Error("unset variant should not be present")
	}
	s.SetVariant("debug", true)
	if on, ok := s.Variant("debug"); !ok || !on {
		t.Error("variant set failed")
	}
}

func TestDepLookupMissing(t *testing.T) {
	s := buildMpileaks()
	if s.Dep("nothere") != nil {
		t.Error("Dep of missing name should be nil")
	}
	if s.Dep("mpileaks") != s {
		t.Error("Dep should find the root by name")
	}
}
