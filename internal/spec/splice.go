package spec

import "fmt"

// SpliceDep returns a copy of root's DAG with the dependency node named
// target replaced by repl's DAG — the spec-level half of the splice
// operation: rewire an installed DAG onto a different dependency without
// rebuilding the dependents. Neither input is mutated.
//
// Every edge that pointed at target is retargeted to repl's root,
// carrying its edge type, so the replacement may have a different name
// (swapping one MPI provider for another). Nodes of repl's closure that
// collide by name with nodes remaining in root's DAG are unified when
// their full hashes agree (the DAG keeps one shared node) and rejected
// when they disagree — a splice must never smuggle in a second
// configuration of a package the DAG already links against.
//
// Every node on a path from the root to the replaced dependency — the
// splice cone — ends up with a new full hash; nodes outside the cone
// keep theirs, which is what lets the store share their prefixes.
func SpliceDep(root *Spec, target string, repl *Spec) (*Spec, error) {
	fail := func(format string, args ...any) (*Spec, error) {
		return nil, fmt.Errorf("spec: splice %s: %s", root.Name, fmt.Sprintf(format, args...))
	}
	if !root.Concrete() {
		return fail("root spec is not concrete")
	}
	if !repl.Concrete() {
		return fail("replacement %s is not concrete", repl.Name)
	}
	if root.Name == target {
		return fail("cannot replace the root itself")
	}

	nr := root.Clone()
	old := nr.Dep(target)
	if old == nil {
		return fail("does not depend on %s", target)
	}

	// Detach: drop every edge pointing at target. Nodes reachable only
	// through it (its exclusive subtree) fall out of the DAG with it.
	type cutEdge struct {
		parent *Spec
		etype  DepType
	}
	var cuts []cutEdge
	for _, n := range nr.Nodes() {
		if _, ok := n.Deps[target]; ok {
			cuts = append(cuts, cutEdge{parent: n, etype: n.EdgeType(target)})
			delete(n.Deps, target)
			n.SetDepType(target, DepDefault)
		}
	}

	// Index what remains; repl's closure must be consistent with it.
	remaining := make(map[string]*Spec)
	for _, n := range nr.Nodes() {
		remaining[n.Name] = n
	}

	// Graft repl's closure bottom-up, unifying name collisions: an equal
	// full hash means the very same configuration, so the DAG shares the
	// existing node; a different hash is a conflict.
	grafted := make(map[string]*Spec)
	var graftedRoot *Spec
	for _, rn := range repl.Clone().TopoOrder() {
		if ex, ok := remaining[rn.Name]; ok {
			if ex.FullHash() != rn.FullHash() {
				return fail("replacement %s needs %s but the DAG already has an incompatible %s",
					repl.Name, rn.String(), ex.String())
			}
			grafted[rn.Name] = ex
		} else {
			for name, d := range rn.Deps {
				if u := grafted[name]; u != nil && u != d {
					rn.Deps[name] = u
				}
			}
			grafted[rn.Name] = rn
		}
		if rn.Name == repl.Name {
			graftedRoot = grafted[rn.Name]
		}
	}

	// Reattach: every cut edge now points at the replacement root.
	for _, c := range cuts {
		if c.parent.Deps == nil {
			c.parent.Deps = make(map[string]*Spec)
		}
		c.parent.Deps[graftedRoot.Name] = graftedRoot
		c.parent.SetDepType(graftedRoot.Name, c.etype)
	}
	return nr, nil
}

// SpliceCone returns the names of the nodes whose full hash changes when
// target is replaced under root: every node with a path to target,
// including the root itself, in bottom-up (dependencies-first) order.
// These are exactly the prefixes a splice must re-materialize.
func SpliceCone(root *Spec, target string) []string {
	affected := make(map[string]bool)
	var walk func(n *Spec) bool
	memo := make(map[string]bool)
	walk = func(n *Spec) bool {
		if n.Name == target {
			return true
		}
		if v, ok := memo[n.Name]; ok {
			return v
		}
		memo[n.Name] = false // break cycles defensively; DAGs have none
		hit := false
		for _, d := range n.Deps {
			if walk(d) {
				hit = true
			}
		}
		memo[n.Name] = hit
		if hit {
			affected[n.Name] = true
		}
		return hit
	}
	walk(root)
	var out []string
	for _, n := range root.TopoOrder() {
		if affected[n.Name] {
			out = append(out, n.Name)
		}
	}
	return out
}
