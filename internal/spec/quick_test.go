package spec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/version"
)

// randomNodeSpec builds a random single-node spec named "p" with random
// version/compiler/variant/arch constraints.
func randomNodeSpec(r *rand.Rand) *Spec {
	s := New("p")
	if r.Intn(2) == 0 {
		lo := 1 + r.Intn(4)
		hi := lo + r.Intn(4)
		rng, _ := version.ParseRange(
			string(rune('0'+lo)) + ":" + string(rune('0'+hi)))
		s.Versions = version.ListOf(rng)
	}
	if r.Intn(3) == 0 {
		s.Compiler = Compiler{Name: "gcc"}
		if r.Intn(2) == 0 {
			s.Compiler.Versions = version.ExactList(version.Parse("4.9"))
		}
	}
	if r.Intn(3) == 0 {
		s.SetVariant("debug", r.Intn(2) == 0)
	}
	if r.Intn(3) == 0 {
		s.SetVariant("shared", r.Intn(2) == 0)
	}
	if r.Intn(4) == 0 {
		s.Arch = []string{"bgq", "linux-x86_64"}[r.Intn(2)]
	}
	if r.Intn(3) == 0 {
		d := New("dep")
		if r.Intn(2) == 0 {
			d.Versions = version.ExactList(version.Parse("1." + string(rune('0'+r.Intn(5)))))
		}
		s.AddDep(d)
	}
	return s
}

type specPair struct{ A, B *Spec }

func (specPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(specPair{randomNodeSpec(r), randomNodeSpec(r)})
}

// TestQuickConstrainCommutative: when both directions succeed, the merged
// canonical forms agree; when one direction fails, so does the other.
func TestQuickConstrainCommutative(t *testing.T) {
	f := func(p specPair) bool {
		ab := p.A.Clone()
		errAB := ab.Constrain(p.B)
		ba := p.B.Clone()
		errBA := ba.Constrain(p.A)
		if (errAB == nil) != (errBA == nil) {
			return false
		}
		if errAB != nil {
			return true
		}
		return ab.String() == ba.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickConstrainIdempotent: constraining twice changes nothing.
func TestQuickConstrainIdempotent(t *testing.T) {
	f := func(p specPair) bool {
		merged := p.A.Clone()
		if err := merged.Constrain(p.B); err != nil {
			return true
		}
		once := merged.String()
		changed, err := merged.ConstrainChanged(p.B)
		if err != nil {
			return false
		}
		return !changed && merged.String() == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickConstrainCompatibleWithInputs: a successful merge remains
// compatible with both inputs.
func TestQuickConstrainCompatibleWithInputs(t *testing.T) {
	f := func(p specPair) bool {
		merged := p.A.Clone()
		if err := merged.Constrain(p.B); err != nil {
			return true
		}
		return merged.Compatible(p.A) && merged.Compatible(p.B)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSatisfiesImpliesCompatible: entailment is stronger than
// compatibility.
func TestQuickSatisfiesImpliesCompatible(t *testing.T) {
	f := func(p specPair) bool {
		if p.A.Satisfies(p.B) {
			return p.A.Compatible(p.B)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneEqual: clones render and hash identically, and mutating
// the clone never touches the original.
func TestQuickCloneEqual(t *testing.T) {
	f := func(p specPair) bool {
		c := p.A.Clone()
		if c.String() != p.A.String() || c.DAGHash() != p.A.DAGHash() {
			return false
		}
		before := p.A.String()
		c.SetVariant("mutation", true)
		c.Arch = "mutated"
		return p.A.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickConstrainGrowsTightness: the merge satisfies anything the
// tighter input satisfied... not in general; but it must satisfy each
// input whenever that input is already fully set on the merged fields.
// We check the weaker, always-true direction: each input is Compatible
// with the merge (same as above) AND the merge's constraint string is
// never shorter than the longer input's (a cheap monotonicity signal).
func TestQuickConstrainMonotone(t *testing.T) {
	f := func(p specPair) bool {
		merged := p.A.Clone()
		if err := merged.Constrain(p.B); err != nil {
			return true
		}
		// Every variant set in either input is set in the merge.
		for name := range p.A.Variants {
			if _, ok := merged.Variant(name); !ok {
				return false
			}
		}
		for name := range p.B.Variants {
			if _, ok := merged.Variant(name); !ok {
				return false
			}
		}
		// Arch set in either input is set in the merge.
		if (p.A.Arch != "" || p.B.Arch != "") && merged.Arch == "" {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
