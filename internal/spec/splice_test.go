package spec

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/version"
)

// spliceNode builds a fully pinned node for splice tests.
func spliceNode(name, ver string) *Spec {
	s := New(name)
	s.Versions = version.ExactList(version.Parse(ver))
	s.Compiler = Compiler{Name: "gcc", Versions: version.ExactList(version.Parse("4.9.2"))}
	s.Arch = "linux-x86_64"
	return s
}

// spliceFixture: app -> mid -> zlib@1.2.7, app -> zlib@1.2.7 (shared).
func spliceFixture() *Spec {
	zlib := spliceNode("zlib", "1.2.7")
	mid := spliceNode("mid", "2.0")
	mid.AddDep(zlib)
	app := spliceNode("app", "1.0")
	app.AddDep(mid)
	app.AddDepTyped(zlib, DepLink)
	return app
}

func TestSpliceDepRewiresEveryEdge(t *testing.T) {
	app := spliceFixture()
	oldHash := app.FullHash()
	oldMidHash := app.Dep("mid").FullHash()

	newZlib := spliceNode("zlib", "1.2.8")
	spliced, err := SpliceDep(app, "zlib", newZlib)
	if err != nil {
		t.Fatal(err)
	}
	// The original DAG is untouched.
	if app.FullHash() != oldHash {
		t.Error("SpliceDep mutated the input DAG")
	}
	got := spliced.Dep("zlib")
	if got == nil {
		t.Fatal("spliced DAG lost the zlib node")
	}
	if v, _ := got.ConcreteVersion(); v.String() != "1.2.8" {
		t.Errorf("spliced zlib version = %s, want 1.2.8", v)
	}
	// Both parents see the same replacement node (sharing preserved).
	if spliced.Deps["zlib"] != spliced.Dep("mid").Deps["zlib"] {
		t.Error("replacement node not shared between parents")
	}
	// Edge types carried over.
	if spliced.EdgeType("zlib") != DepLink {
		t.Errorf("root edge type = %v, want DepLink", spliced.EdgeType("zlib"))
	}
	if spliced.Dep("mid").EdgeType("zlib") != DepDefault {
		t.Errorf("mid edge type = %v, want DepDefault", spliced.Dep("mid").EdgeType("zlib"))
	}
	// Every cone node rehashes; the replaced leaf obviously differs too.
	if spliced.FullHash() == oldHash {
		t.Error("root hash unchanged by splice")
	}
	if spliced.Dep("mid").FullHash() == oldMidHash {
		t.Error("mid hash unchanged by splice")
	}
	if !spliced.Concrete() {
		t.Error("spliced DAG is not concrete")
	}
}

func TestSpliceDepDifferentName(t *testing.T) {
	mpich := spliceNode("mpich", "3.0.4")
	app := spliceNode("app", "1.0")
	app.AddDepTyped(mpich, DepLink)

	openmpi := spliceNode("openmpi", "1.8.8")
	spliced, err := SpliceDep(app, "mpich", openmpi)
	if err != nil {
		t.Fatal(err)
	}
	if spliced.Dep("mpich") != nil {
		t.Error("mpich still present after splice")
	}
	om := spliced.Dep("openmpi")
	if om == nil {
		t.Fatal("openmpi not grafted")
	}
	if spliced.EdgeType("openmpi") != DepLink {
		t.Errorf("edge type = %v, want DepLink (carried from the cut edge)", spliced.EdgeType("openmpi"))
	}
}

func TestSpliceDepUnifiesEqualTransitives(t *testing.T) {
	// app -> mid -> zlib; the replacement for mid also needs the *same*
	// zlib: the DAG must keep a single shared node.
	app := spliceFixture()
	zlib := spliceNode("zlib", "1.2.7")
	newMid := spliceNode("mid", "3.0")
	newMid.AddDep(zlib)

	spliced, err := SpliceDep(app, "mid", newMid)
	if err != nil {
		t.Fatal(err)
	}
	if spliced.Deps["zlib"] != spliced.Dep("mid").Deps["zlib"] {
		t.Error("equal transitive dependency not unified into one node")
	}
}

func TestSpliceDepRejectsConflictingTransitives(t *testing.T) {
	app := spliceFixture()
	otherZlib := spliceNode("zlib", "4.0")
	newMid := spliceNode("mid", "3.0")
	newMid.AddDep(otherZlib)

	_, err := SpliceDep(app, "mid", newMid)
	if err == nil {
		t.Fatal("conflicting transitive dependency accepted")
	}
	if !strings.Contains(err.Error(), "incompatible") {
		t.Errorf("error = %v, want an incompatibility complaint", err)
	}
}

func TestSpliceDepErrors(t *testing.T) {
	app := spliceFixture()
	repl := spliceNode("zlib", "1.2.8")
	if _, err := SpliceDep(app, "app", repl); err == nil {
		t.Error("replacing the root accepted")
	}
	if _, err := SpliceDep(app, "nothere", repl); err == nil {
		t.Error("replacing an absent dependency accepted")
	}
	abstract := New("zlib")
	if _, err := SpliceDep(app, "zlib", abstract); err == nil {
		t.Error("abstract replacement accepted")
	}
}

func TestSpliceCone(t *testing.T) {
	// app -> mid -> zlib, app -> zlib, app -> other (other: no zlib).
	app := spliceFixture()
	other := spliceNode("other", "1.1")
	app.AddDep(other)

	got := SpliceCone(app, "zlib")
	want := []string{"mid", "app"} // bottom-up, excluding zlib and other
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cone = %v, want %v", got, want)
	}
	if cone := SpliceCone(app, "other"); !reflect.DeepEqual(cone, []string{"app"}) {
		t.Errorf("cone over direct-only dep = %v, want [app]", cone)
	}
}
