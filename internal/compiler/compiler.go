// Package compiler models compiler toolchains (SC'15 §3.2.3): a named
// toolchain bundles the C, C++, Fortran 77 and Fortran 90 compilers of one
// vendor at one version ("Spack compiler names like gcc refer to the full
// compiler toolchain"). The registry supports auto-detection from a
// simulated PATH and manual registration through configuration, and answers
// the concretizer's queries for toolchains matching a compiler constraint.
package compiler

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/spec"
	"repro/internal/version"
)

// Toolchain is one installed compiler suite.
type Toolchain struct {
	Name    string // gcc, intel, clang, xl, pgi, ...
	Version version.Version
	CC      string // path to the C compiler driver
	CXX     string
	F77     string
	FC      string
	// Target architectures this toolchain can emit code for; empty means
	// host-only. Cross toolchains (bgq, cray) list their back-end arch.
	Targets []string
	// Features lists language/runtime capabilities the toolchain supports
	// ("c99", "cxx11", "cxx14", "openmp3", "openmp4", ...). §4.5 flags
	// feature-aware compiler selection as future work ("codes are relying
	// on advanced compiler capabilities, like C++11 language features,
	// OpenMP versions"); the concretizer enforces these.
	Features []string
}

// HasFeature reports whether the toolchain supports a named capability.
func (t Toolchain) HasFeature(name string) bool {
	for _, f := range t.Features {
		if f == name {
			return true
		}
	}
	return false
}

// HasFeatures reports whether the toolchain supports all named
// capabilities.
func (t Toolchain) HasFeatures(names []string) bool {
	for _, n := range names {
		if !t.HasFeature(n) {
			return false
		}
	}
	return true
}

// Spec returns the toolchain's identity as a concrete compiler constraint.
func (t Toolchain) Spec() spec.Compiler {
	return spec.Compiler{Name: t.Name, Versions: version.ExactList(t.Version)}
}

// Supports reports whether the toolchain can target an architecture.
func (t Toolchain) Supports(arch string) bool {
	if len(t.Targets) == 0 {
		return arch == "" || arch == "linux-x86_64"
	}
	for _, a := range t.Targets {
		if a == arch {
			return true
		}
	}
	return false
}

func (t Toolchain) String() string {
	return fmt.Sprintf("%s@%s", t.Name, t.Version)
}

// Registry holds the known toolchains.
type Registry struct {
	mu         sync.RWMutex
	toolchains []Toolchain
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a toolchain; duplicate (name, version) pairs are replaced.
func (r *Registry) Add(t Toolchain) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, existing := range r.toolchains {
		if existing.Name == t.Name && existing.Version.Equal(t.Version) {
			r.toolchains[i] = t
			return
		}
	}
	r.toolchains = append(r.toolchains, t)
}

// All returns the toolchains sorted by name, then descending version.
func (r *Registry) All() []Toolchain {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Toolchain, len(r.toolchains))
	copy(out, r.toolchains)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version.Compare(out[j].Version) > 0
	})
	return out
}

// Find returns the toolchains satisfying a compiler constraint (and target
// arch, when nonempty), newest first. A zero constraint matches everything.
func (r *Registry) Find(c spec.Compiler, arch string) []Toolchain {
	var out []Toolchain
	for _, t := range r.All() {
		if c.Name != "" && t.Name != c.Name {
			continue
		}
		if !c.Versions.IsAny() && !c.Versions.Contains(t.Version) {
			continue
		}
		if arch != "" && !t.Supports(arch) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Default returns the preferred fallback toolchain for an architecture:
// the newest gcc that supports it, else the newest supporting toolchain.
func (r *Registry) Default(arch string) (Toolchain, bool) {
	gcc := r.Find(spec.Compiler{Name: "gcc"}, arch)
	if len(gcc) > 0 {
		return gcc[0], true
	}
	all := r.Find(spec.Compiler{}, arch)
	if len(all) > 0 {
		return all[0], true
	}
	return Toolchain{}, false
}

// Fingerprint returns a stable hash over every registered toolchain —
// name, version, targets, and features — the compiler-registry component of
// the concretizer's memo-cache key: registering or replacing a toolchain
// invalidates cached concretization results automatically.
func (r *Registry) Fingerprint() string {
	var b strings.Builder
	for _, t := range r.All() {
		fmt.Fprintf(&b, "%s@%s targets=%s features=%s\n",
			t.Name, t.Version, strings.Join(t.Targets, ","), strings.Join(t.Features, ","))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Len reports the number of registered toolchains.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.toolchains)
}

// DetectFromPATH simulates §3.2.3's auto-detection of compiler toolchains
// in the user's PATH: it scans directory listings (path -> executables) for
// known driver names with version suffixes, e.g. "gcc-4.9.2", "icc-14.0.1",
// and assembles full toolchains from the pieces found in the same
// directory.
func DetectFromPATH(dirs map[string][]string) []Toolchain {
	type key struct{ name, ver, dir string }
	found := make(map[key]*Toolchain)

	drivers := map[string][2]string{ // driver basename -> (toolchain, role)
		"gcc":       {"gcc", "CC"},
		"g++":       {"gcc", "CXX"},
		"gfortran":  {"gcc", "FC"},
		"icc":       {"intel", "CC"},
		"icpc":      {"intel", "CXX"},
		"ifort":     {"intel", "FC"},
		"clang":     {"clang", "CC"},
		"clang++":   {"clang", "CXX"},
		"xlc":       {"xl", "CC"},
		"xlC":       {"xl", "CXX"},
		"xlf":       {"xl", "FC"},
		"pgcc":      {"pgi", "CC"},
		"pgc++":     {"pgi", "CXX"},
		"pgfortran": {"pgi", "FC"},
	}

	for dir, files := range dirs {
		for _, f := range files {
			base, ver := splitVersionSuffix(f)
			info, ok := drivers[base]
			if !ok || ver == "" {
				continue
			}
			k := key{info[0], ver, dir}
			tc := found[k]
			if tc == nil {
				tc = &Toolchain{Name: info[0], Version: version.Parse(ver)}
				found[k] = tc
			}
			full := dir + "/" + f
			switch info[1] {
			case "CC":
				tc.CC = full
			case "CXX":
				tc.CXX = full
			case "FC":
				tc.FC = full
				if tc.F77 == "" {
					tc.F77 = full
				}
			}
		}
	}

	var out []Toolchain
	for _, tc := range found {
		if tc.CC != "" { // a toolchain needs at least a C compiler
			out = append(out, *tc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version.Compare(out[j].Version) > 0
	})
	return out
}

// splitVersionSuffix splits "gcc-4.9.2" into ("gcc", "4.9.2"). Names
// without a dashed version suffix return an empty version.
func splitVersionSuffix(file string) (base, ver string) {
	i := strings.LastIndexByte(file, '-')
	if i < 0 {
		return file, ""
	}
	suffix := file[i+1:]
	if suffix == "" || suffix[0] < '0' || suffix[0] > '9' {
		return file, ""
	}
	return file[:i], suffix
}

// LLNLRegistry builds the toolchain set of the paper's evaluation machines
// (Table 3): gcc, intel 14/15, pgi and clang on Linux; clang and xl
// cross-compilers for Blue Gene/Q; gcc/intel/pgi for the Cray XE6.
func LLNLRegistry() *Registry {
	r := NewRegistry()
	linux := []string{"linux-x86_64", "cray-xe6"}
	add := func(name, ver string, targets []string, cc, cxx, fc string, features ...string) {
		r.Add(Toolchain{
			Name: name, Version: version.Parse(ver),
			CC: cc, CXX: cxx, F77: fc, FC: fc,
			Targets: targets, Features: features,
		})
	}
	add("gcc", "4.4.7", linux, "/usr/bin/gcc-4.4.7", "/usr/bin/g++-4.4.7", "/usr/bin/gfortran-4.4.7",
		"c99", "openmp3")
	add("gcc", "4.7.3", linux, "/usr/bin/gcc-4.7.3", "/usr/bin/g++-4.7.3", "/usr/bin/gfortran-4.7.3",
		"c99", "cxx11", "openmp3")
	add("gcc", "4.9.2", linux, "/usr/bin/gcc-4.9.2", "/usr/bin/g++-4.9.2", "/usr/bin/gfortran-4.9.2",
		"c99", "cxx11", "cxx14", "openmp3", "openmp4")
	add("intel", "14.0.1", linux, "/opt/intel/14/bin/icc", "/opt/intel/14/bin/icpc", "/opt/intel/14/bin/ifort",
		"c99", "cxx11", "openmp3")
	add("intel", "15.0.2", linux, "/opt/intel/15/bin/icc", "/opt/intel/15/bin/icpc", "/opt/intel/15/bin/ifort",
		"c99", "cxx11", "cxx14", "openmp3", "openmp4")
	add("pgi", "14.10", linux, "/opt/pgi/bin/pgcc", "/opt/pgi/bin/pgc++", "/opt/pgi/bin/pgfortran",
		"c99", "openmp3")
	add("clang", "3.5.0", []string{"linux-x86_64", "bgq"}, "/usr/bin/clang-3.5.0", "/usr/bin/clang++-3.5.0", "",
		"c99", "cxx11", "cxx14")
	add("xl", "12.1", []string{"bgq"}, "/opt/ibm/xlc", "/opt/ibm/xlC", "/opt/ibm/xlf",
		"c99", "openmp3")
	return r
}
