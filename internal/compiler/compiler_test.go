package compiler

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/version"
)

func mustList(t *testing.T, s string) version.List {
	t.Helper()
	l, err := version.ParseList(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRegistryAddReplace(t *testing.T) {
	r := NewRegistry()
	r.Add(Toolchain{Name: "gcc", Version: version.Parse("4.9.2"), CC: "/old/gcc"})
	r.Add(Toolchain{Name: "gcc", Version: version.Parse("4.9.2"), CC: "/new/gcc"})
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got := r.All()[0].CC; got != "/new/gcc" {
		t.Errorf("CC = %q, re-add should replace", got)
	}
}

func TestFindByConstraint(t *testing.T) {
	r := LLNLRegistry()
	// All gccs, newest first.
	gccs := r.Find(spec.Compiler{Name: "gcc"}, "linux-x86_64")
	if len(gccs) != 3 || gccs[0].Version.String() != "4.9.2" {
		t.Errorf("gccs = %v", gccs)
	}
	// Version-constrained.
	got := r.Find(spec.Compiler{Name: "gcc", Versions: mustList(t, "4.7:")}, "linux-x86_64")
	if len(got) != 2 {
		t.Errorf("gcc@4.7: = %v", got)
	}
	// Arch-filtered: xl only targets bgq.
	if got := r.Find(spec.Compiler{Name: "xl"}, "linux-x86_64"); len(got) != 0 {
		t.Errorf("xl on linux = %v", got)
	}
	if got := r.Find(spec.Compiler{Name: "xl"}, "bgq"); len(got) != 1 {
		t.Errorf("xl on bgq = %v", got)
	}
	// Empty constraint matches all for the arch.
	all := r.Find(spec.Compiler{}, "bgq")
	if len(all) != 2 { // clang + xl
		t.Errorf("bgq toolchains = %v", all)
	}
}

func TestDefaultPrefersGCC(t *testing.T) {
	r := LLNLRegistry()
	d, ok := r.Default("linux-x86_64")
	if !ok || d.Name != "gcc" || d.Version.String() != "4.9.2" {
		t.Errorf("default = %v, %v", d, ok)
	}
	// On bgq there is no gcc: newest supporting toolchain wins.
	d, ok = r.Default("bgq")
	if !ok || (d.Name != "clang" && d.Name != "xl") {
		t.Errorf("bgq default = %v, %v", d, ok)
	}
	_, ok = r.Default("no-such-arch")
	if ok {
		t.Error("unknown arch should have no default")
	}
}

func TestToolchainSpec(t *testing.T) {
	tc := Toolchain{Name: "intel", Version: version.Parse("14.0.1")}
	s := tc.Spec()
	if !s.Concrete() || s.String() != "intel@14.0.1" {
		t.Errorf("Spec = %v", s)
	}
	if tc.String() != "intel@14.0.1" {
		t.Errorf("String = %q", tc.String())
	}
}

func TestSupports(t *testing.T) {
	host := Toolchain{Name: "gcc"}
	if !host.Supports("linux-x86_64") || !host.Supports("") {
		t.Error("host toolchain should support host arch")
	}
	if host.Supports("bgq") {
		t.Error("host toolchain should not support bgq")
	}
	cross := Toolchain{Name: "xl", Targets: []string{"bgq"}}
	if !cross.Supports("bgq") || cross.Supports("linux-x86_64") {
		t.Error("cross toolchain targets wrong")
	}
}

func TestDetectFromPATH(t *testing.T) {
	dirs := map[string][]string{
		"/usr/bin": {
			"gcc-4.9.2", "g++-4.9.2", "gfortran-4.9.2",
			"gcc-4.4.7", "g++-4.4.7",
			"clang-3.5.0", "clang++-3.5.0",
			"ls", "cat", "gcc", // unversioned and unrelated files ignored
		},
		"/opt/intel/bin": {"icc-14.0.1", "icpc-14.0.1", "ifort-14.0.1"},
	}
	found := DetectFromPATH(dirs)
	byKey := make(map[string]Toolchain)
	for _, tc := range found {
		byKey[tc.String()] = tc
	}
	gcc, ok := byKey["gcc@4.9.2"]
	if !ok || gcc.CC != "/usr/bin/gcc-4.9.2" || gcc.CXX != "/usr/bin/g++-4.9.2" ||
		gcc.FC != "/usr/bin/gfortran-4.9.2" || gcc.F77 != gcc.FC {
		t.Errorf("gcc@4.9.2 = %+v (ok=%v)", gcc, ok)
	}
	if _, ok := byKey["gcc@4.4.7"]; !ok {
		t.Error("second gcc version not detected")
	}
	if _, ok := byKey["clang@3.5.0"]; !ok {
		t.Error("clang not detected")
	}
	intel, ok := byKey["intel@14.0.1"]
	if !ok || intel.CC != "/opt/intel/bin/icc-14.0.1" {
		t.Errorf("intel = %+v", intel)
	}
	// Sorted: name asc, version desc.
	for i := 1; i < len(found); i++ {
		a, b := found[i-1], found[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Version.Compare(b.Version) < 0) {
			t.Errorf("unsorted detection output at %d: %v then %v", i, a, b)
		}
	}
}

func TestDetectIgnoresCXXOnly(t *testing.T) {
	// A directory with only a C++ driver yields no toolchain (needs CC).
	found := DetectFromPATH(map[string][]string{"/x": {"g++-5.1.0"}})
	if len(found) != 0 {
		t.Errorf("found = %v", found)
	}
}

func TestSplitVersionSuffix(t *testing.T) {
	tests := []struct{ in, base, ver string }{
		{"gcc-4.9.2", "gcc", "4.9.2"},
		{"clang++-3.5.0", "clang++", "3.5.0"},
		{"gcc", "gcc", ""},
		{"pgc++", "pgc++", ""},
		{"gcc-", "gcc-", ""},
	}
	for _, tt := range tests {
		b, v := splitVersionSuffix(tt.in)
		if b != tt.base || v != tt.ver {
			t.Errorf("splitVersionSuffix(%q) = %q, %q", tt.in, b, v)
		}
	}
}

func TestLLNLRegistryComplete(t *testing.T) {
	r := LLNLRegistry()
	for _, want := range []string{"gcc", "intel", "pgi", "clang", "xl"} {
		if len(r.Find(spec.Compiler{Name: want}, "")) == 0 &&
			len(r.Find(spec.Compiler{Name: want}, "bgq")) == 0 &&
			len(r.Find(spec.Compiler{Name: want}, "cray-xe6")) == 0 {
			t.Errorf("LLNL registry missing %s", want)
		}
	}
}
