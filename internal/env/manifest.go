// Package env implements Spack environments: a spack.yaml-style manifest
// of named abstract specs (plus a view and config overrides) that
// concretizes as one unit, is pinned by a full-hash-keyed lockfile
// (spack.lock), and installs or updates the store through a single
// journaled transaction — the add/remove delta either lands completely or
// not at all. This is the paper's §4 combinatorial-stack workflow turned
// into a first-class, atomically updatable object (the shape Nix pioneered
// for profiles and Spack later shipped as environments).
package env

import (
	"fmt"
	"sort"
	"strings"
)

// View configures the environment's link forest.
type View struct {
	// Path is the view root directory; links land directly under it.
	Path string
	// Projection is the link-name template (views.ExpandTemplate
	// placeholders); default "${PACKAGE}-${VERSION}".
	Projection string
	// Conflict selects whose compiler preference breaks link conflicts
	// when several installs project onto one name: "user" (default, the
	// merged user-then-site order) or "site" (site scope only — the
	// policy a shared team view pins regardless of personal config).
	Conflict string
}

// Manifest mirrors the spack.yaml subset this repo understands:
//
//	spack:
//	  specs:
//	  - mpileaks ^mvapich
//	  - dyninst
//	  view:
//	    path: /spack/envs/dev/view
//	    projection: ${PACKAGE}-${VERSION}
//	    conflict: user
//	  config:
//	    compiler_order: icc,gcc@4.6.1
//	    providers:
//	      mpi: [mvapich, mpich]
type Manifest struct {
	// Specs are the named abstract specs, in manifest order.
	Specs []string
	// View is the optional link-forest projection.
	View *View
	// CompilerOrder overrides the user-scope compiler_order for this
	// environment's concretizations.
	CompilerOrder string
	// Providers overrides virtual-provider preference per virtual name.
	Providers map[string][]string
}

// DefaultProjection is the link template a view without an explicit
// projection uses.
const DefaultProjection = "${PACKAGE}-${VERSION}"

// ConflictPolicy normalizes the view's conflict setting.
func (v *View) ConflictPolicy() string {
	if v == nil || v.Conflict == "" {
		return "user"
	}
	return v.Conflict
}

// ProjectionTemplate returns the effective link template.
func (v *View) ProjectionTemplate() string {
	if v.Projection == "" {
		return DefaultProjection
	}
	return v.Projection
}

// yamlNode is one node of the indentation-parsed spack.yaml subset:
// exactly one of scalar, list, or mapping is populated.
type yamlNode struct {
	scalar  string
	list    []string
	mapping map[string]*yamlNode
	keys    []string // mapping insertion order
}

type yamlLine struct {
	indent int
	text   string
	num    int
}

// parseYAML parses the indentation-structured subset of YAML the manifest
// uses: block mappings (`key:` / `key: value`), block lists of scalars
// (`- item`), and inline lists (`[a, b]`). Anything else is an error —
// environments are hand-edited files, so unknown shapes fail loudly
// rather than deserializing to garbage.
func parseYAML(src string) (*yamlNode, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		text := raw
		if idx := strings.Index(text, "#"); idx >= 0 && !strings.Contains(text[:idx], "${") {
			text = text[:idx]
		}
		trimmed := strings.TrimRight(text, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		body := strings.TrimLeft(trimmed, " \t")
		if strings.Contains(trimmed[:len(trimmed)-len(body)], "\t") {
			return nil, fmt.Errorf("env: line %d: tabs are not allowed for indentation", i+1)
		}
		indent := len(trimmed) - len(body)
		lines = append(lines, yamlLine{indent: indent, text: strings.TrimSpace(trimmed), num: i + 1})
	}
	node, next, err := parseYAMLBlock(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("env: line %d: unexpected outdent", lines[next].num)
	}
	return node, nil
}

// parseYAMLBlock parses one block starting at lines[i], whose members all
// share lines[i].indent, returning the node and the index past the block.
func parseYAMLBlock(lines []yamlLine, i, indent int) (*yamlNode, int, error) {
	if i >= len(lines) {
		return &yamlNode{}, i, nil
	}
	blockIndent := lines[i].indent
	if blockIndent < indent {
		return &yamlNode{}, i, nil
	}
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		n := &yamlNode{}
		for i < len(lines) && lines[i].indent == blockIndent && strings.HasPrefix(lines[i].text, "-") {
			item := strings.TrimSpace(strings.TrimPrefix(lines[i].text, "-"))
			if item == "" {
				return nil, i, fmt.Errorf("env: line %d: empty list item", lines[i].num)
			}
			n.list = append(n.list, item)
			i++
		}
		return n, i, nil
	}
	n := &yamlNode{mapping: map[string]*yamlNode{}}
	for i < len(lines) && lines[i].indent == blockIndent {
		text := lines[i].text
		if strings.HasPrefix(text, "- ") {
			return nil, i, fmt.Errorf("env: line %d: list item inside a mapping", lines[i].num)
		}
		colon := strings.Index(text, ":")
		if colon < 0 {
			return nil, i, fmt.Errorf("env: line %d: expected `key:` or `key: value`", lines[i].num)
		}
		key := strings.TrimSpace(text[:colon])
		val := strings.TrimSpace(text[colon+1:])
		if key == "" {
			return nil, i, fmt.Errorf("env: line %d: empty key", lines[i].num)
		}
		if _, dup := n.mapping[key]; dup {
			return nil, i, fmt.Errorf("env: line %d: duplicate key %q", lines[i].num, key)
		}
		var child *yamlNode
		var err error
		if val != "" {
			if strings.HasPrefix(val, "[") && strings.HasSuffix(val, "]") {
				child = &yamlNode{}
				for _, item := range strings.Split(val[1:len(val)-1], ",") {
					if item = strings.TrimSpace(item); item != "" {
						child.list = append(child.list, item)
					}
				}
			} else {
				child = &yamlNode{scalar: val}
			}
			i++
		} else {
			i++
			switch {
			case i < len(lines) && lines[i].indent > blockIndent:
				child, i, err = parseYAMLBlock(lines, i, blockIndent+1)
			case i < len(lines) && lines[i].indent == blockIndent && strings.HasPrefix(lines[i].text, "-"):
				// YAML permits sequence items at the parent key's indent:
				//   specs:
				//   - zlib
				child, i, err = parseYAMLBlock(lines, i, blockIndent)
			default:
				child = &yamlNode{} // empty section
			}
			if err != nil {
				return nil, i, err
			}
		}
		n.mapping[key] = child
		n.keys = append(n.keys, key)
	}
	return n, i, nil
}

// ParseManifest parses spack.yaml content.
func ParseManifest(src string) (*Manifest, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	top, ok := root.mapping["spack"]
	if root.mapping == nil || !ok {
		return nil, fmt.Errorf("env: manifest has no top-level `spack:` section")
	}
	m := &Manifest{}
	for _, key := range top.keys {
		child := top.mapping[key]
		switch key {
		case "specs":
			m.Specs = append(m.Specs, child.list...)
		case "view":
			v := &View{}
			for _, vk := range child.keys {
				val := child.mapping[vk].scalar
				switch vk {
				case "path":
					v.Path = val
				case "projection":
					v.Projection = val
				case "conflict":
					v.Conflict = val
				default:
					return nil, fmt.Errorf("env: unknown view setting %q", vk)
				}
			}
			if v.Path == "" {
				return nil, fmt.Errorf("env: view needs a path")
			}
			if p := v.ConflictPolicy(); p != "user" && p != "site" {
				return nil, fmt.Errorf("env: view conflict policy %q (want user or site)", p)
			}
			m.View = v
		case "config":
			for _, ck := range child.keys {
				cc := child.mapping[ck]
				switch ck {
				case "compiler_order":
					m.CompilerOrder = cc.scalar
				case "providers":
					m.Providers = map[string][]string{}
					for _, virt := range cc.keys {
						m.Providers[virt] = append([]string(nil), cc.mapping[virt].list...)
					}
				default:
					return nil, fmt.Errorf("env: unknown config setting %q", ck)
				}
			}
		default:
			return nil, fmt.Errorf("env: unknown manifest section %q", key)
		}
	}
	return m, nil
}

// Render writes the manifest back in canonical form (the inverse of
// ParseManifest, stable under round trips).
func (m *Manifest) Render() string {
	var b strings.Builder
	b.WriteString("spack:\n")
	b.WriteString("  specs:\n")
	for _, s := range m.Specs {
		fmt.Fprintf(&b, "  - %s\n", s)
	}
	if v := m.View; v != nil {
		b.WriteString("  view:\n")
		fmt.Fprintf(&b, "    path: %s\n", v.Path)
		if v.Projection != "" {
			fmt.Fprintf(&b, "    projection: %s\n", v.Projection)
		}
		if v.Conflict != "" {
			fmt.Fprintf(&b, "    conflict: %s\n", v.Conflict)
		}
	}
	if m.CompilerOrder != "" || len(m.Providers) > 0 {
		b.WriteString("  config:\n")
		if m.CompilerOrder != "" {
			fmt.Fprintf(&b, "    compiler_order: %s\n", m.CompilerOrder)
		}
		if len(m.Providers) > 0 {
			b.WriteString("    providers:\n")
			virts := make([]string, 0, len(m.Providers))
			for v := range m.Providers {
				virts = append(virts, v)
			}
			sort.Strings(virts)
			for _, v := range virts {
				fmt.Fprintf(&b, "      %s: [%s]\n", v, strings.Join(m.Providers[v], ", "))
			}
		}
	}
	return b.String()
}
