package env_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/env"
)

// TestApplyReuseLockSubsetOfStore: re-planning with Reuse set resolves
// against the lockfile and the store — an unconstrained respecification of
// an installed root keeps the installed (older) configuration, and every
// hash in the resulting lock is already installed.
func TestApplyReuseLockSubsetOfStore(t *testing.T) {
	s, h := newHost(t)
	h.Reuse = true
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"libelf@0.8.12"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}

	// Loosen the manifest: the pin goes away, but under -reuse the solver
	// must stick with the installed 0.8.12 rather than rebuild at 0.8.13.
	if err := e.RemoveSpec("libelf@0.8.12"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddSpec("libelf"); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveManifest(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Keep) != 1 || len(res.Plan.Add) != 0 {
		t.Errorf("reuse plan should keep the installed root: add=%d keep=%d remove=%d",
			len(res.Plan.Add), len(res.Plan.Keep), len(res.Plan.Remove))
	}

	lock, err := e.ReadLock()
	if err != nil {
		t.Fatal(err)
	}
	if len(lock.Roots) != 1 {
		t.Fatalf("lock roots = %+v", lock.Roots)
	}
	root, err := lock.Spec(lock.Roots[0].Hash)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.ConcreteVersion(); v.String() != "0.8.12" {
		t.Errorf("reuse re-lock picked %s, want installed 0.8.12", v)
	}

	// Every locked hash is already installed: lock ⊆ store.
	installed, err := h.Store.ReuseCandidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range lock.Roots {
		dag, err := lock.Spec(lr.Hash)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range dag.TopoOrder() {
			if n.External {
				continue
			}
			if _, ok := installed[n.FullHash()]; !ok {
				t.Errorf("locked %s (%s) not installed", n.Name, n.FullHash())
			}
		}
	}
}

// TestApplyWithoutReuseUpgrades: the control — without Reuse the same
// loosened manifest re-concretizes to the newest version.
func TestApplyWithoutReuseUpgrades(t *testing.T) {
	s, h := newHost(t)
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"libelf@0.8.12"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveSpec("libelf@0.8.12"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddSpec("libelf"); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveManifest(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	lock, err := e.ReadLock()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lock.Spec(lock.Roots[0].Hash)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.ConcreteVersion(); v.String() == "0.8.12" {
		t.Error("without reuse the loosened spec should pick the newest version")
	}
}
