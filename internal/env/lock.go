package env

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/simfs"
	"repro/internal/spec"
	"repro/internal/syntax"
	"repro/internal/txn"
)

// LockVersion is the spack.lock schema version this code writes.
const LockVersion = 1

// LockRoot pins one manifest entry to the full hash it concretized to.
type LockRoot struct {
	Expr string `json:"expr"`
	Hash string `json:"hash"`
}

// Lock is the committed concretization of an environment — the spack.lock
// file. Roots preserve manifest order; Specs maps each root's full hash to
// its serialized concrete DAG, so a later process can reproduce (and
// uninstall) exactly what was installed without re-concretizing.
type Lock struct {
	Version int                        `json:"version"`
	Roots   []LockRoot                 `json:"roots"`
	Specs   map[string]json.RawMessage `json:"specs"`
}

// Spec decodes the concrete DAG locked for a root hash.
func (l *Lock) Spec(hash string) (*spec.Spec, error) {
	raw, ok := l.Specs[hash]
	if !ok {
		return nil, fmt.Errorf("env: lockfile has no spec for hash %s", hash)
	}
	return syntax.DecodeJSON(raw)
}

// ReuseCandidates decodes every locked concrete DAG, keyed by full hash —
// a lockfile is a ReuseSource, so re-planning under -reuse sticks to the
// configurations the environment already committed to. Undecodable
// entries are skipped; the lock is a preference here, not a requirement.
func (l *Lock) ReuseCandidates() (map[string]*spec.Spec, error) {
	out := make(map[string]*spec.Spec, len(l.Specs))
	for hash := range l.Specs {
		s, err := l.Spec(hash)
		if err != nil {
			continue
		}
		out[hash] = s
	}
	return out, nil
}

// ReuseFingerprint identifies the locked set by its sorted root hashes.
func (l *Lock) ReuseFingerprint() string {
	hashes := make([]string, 0, len(l.Specs))
	for h := range l.Specs {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	return "lock:" + strings.Join(hashes, ",")
}

// readLock loads a lockfile; a missing file is an empty lock (the
// environment has never been installed).
func readLock(fs *simfs.FS, path string) (*Lock, error) {
	if exists, isDir := fs.Stat(path); !exists || isDir {
		return &Lock{Version: LockVersion, Specs: map[string]json.RawMessage{}}, nil
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l Lock
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("env: corrupt lockfile %s: %w", path, err)
	}
	if l.Version > LockVersion {
		return nil, fmt.Errorf("env: lockfile %s has version %d, newer than this tool (%d)",
			path, l.Version, LockVersion)
	}
	if l.Specs == nil {
		l.Specs = map[string]json.RawMessage{}
	}
	return &l, nil
}

// writeLock persists a lockfile atomically (temp + rename), so readers
// never observe a half-written lock.
func writeLock(fs *simfs.FS, path string, l *Lock) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return txn.WriteFileAtomic(fs, path, append(data, '\n'))
}
