package env

import (
	"strings"
	"testing"
)

const sampleManifest = `# team environment
spack:
  specs:
  - mpileaks ^mvapich
  - dyninst
  view:
    path: /spack/envs/dev/view
    projection: ${PACKAGE}-${VERSION}
    conflict: site
  config:
    compiler_order: icc,gcc@4.6.1
    providers:
      mpi: [mvapich, mpich]
`

func TestParseManifestFull(t *testing.T) {
	m, err := ParseManifest(sampleManifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Specs) != 2 || m.Specs[0] != "mpileaks ^mvapich" || m.Specs[1] != "dyninst" {
		t.Errorf("specs = %v", m.Specs)
	}
	if m.View == nil || m.View.Path != "/spack/envs/dev/view" {
		t.Fatalf("view = %+v", m.View)
	}
	if m.View.Projection != "${PACKAGE}-${VERSION}" || m.View.ConflictPolicy() != "site" {
		t.Errorf("view = %+v", m.View)
	}
	if m.CompilerOrder != "icc,gcc@4.6.1" {
		t.Errorf("compiler_order = %q", m.CompilerOrder)
	}
	if got := m.Providers["mpi"]; len(got) != 2 || got[0] != "mvapich" || got[1] != "mpich" {
		t.Errorf("providers = %v", m.Providers)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m, err := ParseManifest(sampleManifest)
	if err != nil {
		t.Fatal(err)
	}
	rendered := m.Render()
	back, err := ParseManifest(rendered)
	if err != nil {
		t.Fatalf("re-parse rendered manifest: %v\n%s", err, rendered)
	}
	if back.Render() != rendered {
		t.Errorf("render not stable:\n%s\nvs\n%s", rendered, back.Render())
	}
	if len(back.Specs) != 2 || back.View == nil || back.View.Conflict != "site" ||
		back.CompilerOrder != m.CompilerOrder || len(back.Providers["mpi"]) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestManifestDefaults(t *testing.T) {
	m, err := ParseManifest("spack:\n  specs:\n  - zlib\n  view:\n    path: /v\n")
	if err != nil {
		t.Fatal(err)
	}
	if m.View.ProjectionTemplate() != DefaultProjection {
		t.Errorf("projection default = %q", m.View.ProjectionTemplate())
	}
	if m.View.ConflictPolicy() != "user" {
		t.Errorf("conflict default = %q", m.View.ConflictPolicy())
	}
}

func TestParseManifestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no spack section", "specs:\n- zlib\n", "no top-level"},
		{"unknown section", "spack:\n  stuff:\n  - x\n", "unknown manifest section"},
		{"unknown view key", "spack:\n  view:\n    pth: /v\n", "unknown view setting"},
		{"view without path", "spack:\n  view:\n    projection: ${PACKAGE}\n", "view needs a path"},
		{"bad conflict", "spack:\n  view:\n    path: /v\n    conflict: nobody\n", "conflict policy"},
		{"tab indent", "spack:\n\tspecs:\n", "tabs"},
		{"bare text", "spack:\n  specs:\n  - zlib\n  oops\n", "expected `key:`"},
		{"duplicate key", "spack:\n  specs:\n  - a\n  specs:\n  - b\n", "duplicate key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseManifest(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestInlineListAndComments(t *testing.T) {
	m, err := ParseManifest("spack:\n  specs: [zlib, libelf@0.8.13]\n  # trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Specs) != 2 || m.Specs[1] != "libelf@0.8.13" {
		t.Errorf("specs = %v", m.Specs)
	}
}
