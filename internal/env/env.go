package env

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/build"
	"repro/internal/compiler"
	"repro/internal/concretize"
	"repro/internal/config"
	"repro/internal/modules"
	"repro/internal/repo"
	"repro/internal/simfs"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/syntax"
	"repro/internal/txn"
	"repro/internal/views"
)

// DefaultRoot is where named environments live unless overridden.
const DefaultRoot = "/spack/envs"

const (
	manifestName = "spack.yaml"
	lockName     = "spack.lock"
)

// Host bundles the shared machinery environments operate against. Core
// wires one up from its own subsystems (see core.EnvHost); tests assemble
// them directly.
type Host struct {
	FS        *simfs.FS
	Config    *config.Config
	Repos     *repo.Path
	Compilers *compiler.Registry
	// Cache is the shared concretization memo cache; environments reuse it
	// safely because cache keys include the config fingerprint, and each
	// environment concretizes under its own layered config.
	Cache   *concretize.Cache
	Store   *store.Store
	Builder *build.Builder
	// Modules regenerates module files alongside installs; nil disables.
	Modules *modules.Generator
	// IsMPI feeds view templates' ${MPINAME} placeholder.
	IsMPI func(string) bool
	// Reuse makes Plan concretize against what already exists — the
	// environment's lockfile and the store — so re-planning prefers
	// installed hashes over newest versions (`env install -reuse`).
	Reuse bool
}

// Environment is one named manifest + lockfile directory.
type Environment struct {
	Name     string
	Dir      string
	Manifest *Manifest

	fs   *simfs.FS
	view *views.Manager
}

// ManifestPath returns the environment's spack.yaml location.
func (e *Environment) ManifestPath() string { return e.Dir + "/" + manifestName }

// LockPath returns the environment's spack.lock location.
func (e *Environment) LockPath() string { return e.Dir + "/" + lockName }

// Create makes a new environment directory with an initial manifest.
func Create(fs *simfs.FS, root, name string, specs []string) (*Environment, error) {
	if name == "" || strings.ContainsAny(name, "/ \t") {
		return nil, fmt.Errorf("env: invalid environment name %q", name)
	}
	for _, expr := range specs {
		if _, err := syntax.Parse(expr); err != nil {
			return nil, fmt.Errorf("env: spec %q: %w", expr, err)
		}
	}
	e := &Environment{Name: name, Dir: root + "/" + name, fs: fs,
		Manifest: &Manifest{Specs: append([]string(nil), specs...)}}
	if exists, _ := fs.Stat(e.ManifestPath()); exists {
		return nil, fmt.Errorf("env: environment %q already exists", name)
	}
	if err := fs.MkdirAll(e.Dir); err != nil {
		return nil, err
	}
	return e, e.SaveManifest()
}

// Open loads an existing environment's manifest.
func Open(fs *simfs.FS, root, name string) (*Environment, error) {
	e := &Environment{Name: name, Dir: root + "/" + name, fs: fs}
	data, err := fs.ReadFile(e.ManifestPath())
	if err != nil {
		return nil, fmt.Errorf("env: no environment %q under %s", name, root)
	}
	m, err := ParseManifest(string(data))
	if err != nil {
		return nil, err
	}
	e.Manifest = m
	return e, nil
}

// List names the environments under a root, sorted.
func List(fs *simfs.FS, root string) []string {
	names, err := fs.List(root)
	if err != nil {
		return nil
	}
	var out []string
	for _, name := range names {
		if exists, _ := fs.Stat(root + "/" + name + "/" + manifestName); exists {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// SaveManifest writes spack.yaml atomically.
func (e *Environment) SaveManifest() error {
	return txn.WriteFileAtomic(e.fs, e.ManifestPath(), []byte(e.Manifest.Render()))
}

// AddSpec appends an abstract spec to the manifest and saves it. The spec
// is validated syntactically but not concretized — that happens at install.
func (e *Environment) AddSpec(expr string) error {
	if _, err := syntax.Parse(expr); err != nil {
		return fmt.Errorf("env: spec %q: %w", expr, err)
	}
	for _, s := range e.Manifest.Specs {
		if s == expr {
			return fmt.Errorf("env: %q is already in the manifest", expr)
		}
	}
	e.Manifest.Specs = append(e.Manifest.Specs, expr)
	return e.SaveManifest()
}

// RemoveSpec drops a manifest entry (exact expression match) and saves.
func (e *Environment) RemoveSpec(expr string) error {
	for i, s := range e.Manifest.Specs {
		if s == expr {
			e.Manifest.Specs = append(e.Manifest.Specs[:i], e.Manifest.Specs[i+1:]...)
			return e.SaveManifest()
		}
	}
	return fmt.Errorf("env: %q is not in the manifest", expr)
}

// ReadLock loads the committed lockfile (empty if never installed).
func (e *Environment) ReadLock() (*Lock, error) {
	return readLock(e.fs, e.LockPath())
}

// envConfig layers the environment's config section over the host's site
// scope: the environment replaces the user scope, so its settings take the
// personal-preference slot in §4.1's precedence order while site policy
// still applies underneath.
func (e *Environment) envConfig(h *Host) (*config.Config, error) {
	m := e.Manifest
	if m.CompilerOrder == "" && len(m.Providers) == 0 {
		return h.Config, nil
	}
	scope := config.NewScope()
	if m.CompilerOrder != "" {
		if err := scope.SetCompilerOrder(m.CompilerOrder); err != nil {
			return nil, err
		}
	}
	virts := make([]string, 0, len(m.Providers))
	for v := range m.Providers {
		virts = append(virts, v)
	}
	sort.Strings(virts)
	for _, v := range virts {
		scope.SetProviderOrder(v, m.Providers[v]...)
	}
	var site *config.Scope
	if h.Config != nil {
		site = h.Config.Site
	}
	return &config.Config{Site: site, User: scope}, nil
}

// Change is one root-level delta entry in a plan.
type Change struct {
	Expr string     // the manifest (or locked) expression
	Hash string     // the root's full hash
	Root *spec.Spec // the concrete DAG
}

// Plan is the diff between the manifest's concretization and the committed
// lockfile: what must be installed, what stays, what leaves.
type Plan struct {
	// Concrete holds one concrete root per manifest spec, in manifest
	// order (duplicates possible when two entries concretize identically).
	Concrete []*spec.Spec
	Add      []Change
	Keep     []Change
	Remove   []Change
}

// NoOp reports whether applying the plan would change nothing — the
// unchanged-lockfile fast path.
func (p *Plan) NoOp() bool { return len(p.Add) == 0 && len(p.Remove) == 0 }

// Plan concretizes the whole manifest as one unit (shared sub-DAGs unify
// across roots, §3.4.2) and diffs the result against the lockfile by full
// hash. Locked roots whose installs have vanished from the store are
// re-planned as adds, so a manually broken environment heals on install.
func (e *Environment) Plan(h *Host) (*Plan, error) {
	cfg, err := e.envConfig(h)
	if err != nil {
		return nil, err
	}
	abstracts := make([]*spec.Spec, 0, len(e.Manifest.Specs))
	for _, expr := range e.Manifest.Specs {
		a, err := syntax.Parse(expr)
		if err != nil {
			return nil, fmt.Errorf("env: manifest spec %q: %w", expr, err)
		}
		abstracts = append(abstracts, a)
	}
	lock, err := e.ReadLock()
	if err != nil {
		return nil, err
	}
	conc := concretize.New(h.Repos, cfg, h.Compilers)
	conc.Cache = h.Cache
	if h.Reuse {
		// Prefer what the environment already locked, then anything else
		// installed in the store.
		conc.Reuse = concretize.MultiReuse(lock, h.Store)
	}
	concrete, err := conc.ConcretizeAll(abstracts)
	if err != nil {
		return nil, err
	}

	p := &Plan{Concrete: concrete}
	desired := make(map[string]Change, len(concrete))
	var order []string
	for i, c := range concrete {
		hash := c.FullHash()
		if _, dup := desired[hash]; dup {
			continue
		}
		desired[hash] = Change{Expr: e.Manifest.Specs[i], Hash: hash, Root: c}
		order = append(order, hash)
	}
	planned := make(map[string]bool)
	for _, lr := range lock.Roots {
		if planned[lr.Hash] {
			continue
		}
		planned[lr.Hash] = true
		if ch, ok := desired[lr.Hash]; ok {
			if h.Store.IsInstalled(ch.Root) {
				p.Keep = append(p.Keep, ch)
			} else {
				p.Add = append(p.Add, ch)
			}
			continue
		}
		root, err := lock.Spec(lr.Hash)
		if err != nil {
			return nil, err
		}
		p.Remove = append(p.Remove, Change{Expr: lr.Expr, Hash: lr.Hash, Root: root})
	}
	for _, hash := range order {
		if !planned[hash] {
			p.Add = append(p.Add, desired[hash])
		}
	}
	return p, nil
}

// Result reports one Apply or Uninstall.
type Result struct {
	Plan    *Plan
	Builds  []*build.Result
	Removed []string // uninstalled root hashes
	// SkippedRemove maps root hashes that left the environment but stayed
	// installed (other specs still depend on them) to the reason.
	SkippedRemove map[string]string
	Links         []views.Link // the view's final link set
	Modules       []string     // module files staged for added nodes
}

// Apply installs the plan's delta as ONE journaled transaction: every
// added DAG's store mutations, the removed roots' record+prefix deletions,
// the module-file edits, and the view's link delta all commit together.
// A crash at any point recovers to exactly the pre- or post-state; the
// lockfile is written only after the commit succeeds.
func (e *Environment) Apply(h *Host) (*Result, error) {
	p, err := e.Plan(h)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: p, SkippedRemove: map[string]string{}}
	if p.NoOp() {
		// The lockfile already matches the manifest: nothing builds,
		// nothing moves. (`env install` twice in a row is free.)
		return res, nil
	}

	t := txn.Begin(h.FS, h.Store.JournalDir())
	committed := false
	defer func() {
		if !committed {
			_ = t.Rollback()
		}
	}()

	for _, ch := range p.Add {
		br, err := h.Builder.BuildTxn(ch.Root, t)
		if err != nil {
			return nil, err
		}
		res.Builds = append(res.Builds, br)
	}
	if h.Modules != nil {
		seen := make(map[string]bool)
		for _, ch := range p.Add {
			for _, n := range ch.Root.TopoOrder() {
				hash := n.FullHash()
				if n.External || seen[hash] {
					continue
				}
				seen[hash] = true
				rec, ok := h.Store.Lookup(n)
				if !ok {
					continue
				}
				res.Modules = append(res.Modules, h.Modules.StageGenerate(t, n, rec.Prefix))
			}
		}
	}
	for _, ch := range p.Remove {
		if err := e.stageRootRemoval(h, t, ch, res); err != nil {
			return nil, err
		}
	}
	if e.Manifest.View != nil {
		links, err := e.refreshView(h, t, p.Keep, p.Add)
		if err != nil {
			return nil, err
		}
		res.Links = links
	}

	if err := t.Commit(h.Store.Applier()); err != nil {
		var ce *txn.CommitError
		if errors.As(err, &ce) {
			// Past the commit point: the journal survives for roll-forward
			// recovery, so the deferred rollback must not run.
			committed = true
		}
		return nil, err
	}
	committed = true

	if err := e.writeLockFor(p); err != nil {
		return res, err
	}
	return res, nil
}

// stageRootRemoval stages one root's uninstall into the transaction,
// tolerating roots held by dependents (they leave the environment but stay
// installed) and roots already gone from the store.
func (e *Environment) stageRootRemoval(h *Host, t *txn.Txn, ch Change, res *Result) error {
	err := h.Store.UninstallTxn(t, ch.Root, false)
	var ue *store.UninstallError
	switch {
	case err == nil:
		if h.Modules != nil {
			h.Modules.StageRemove(t, ch.Root)
		}
		res.Removed = append(res.Removed, ch.Hash)
	case errors.As(err, &ue) && len(ue.Dependents) > 0:
		res.SkippedRemove[ch.Hash] = "required by " + strings.Join(ue.Dependents, ", ")
	case errors.As(err, &ue) && ue.Err != nil && strings.Contains(ue.Err.Error(), "not installed"):
		// Already removed by another environment or by hand: converge.
		res.Removed = append(res.Removed, ch.Hash)
	default:
		return err
	}
	return nil
}

// writeLockFor commits the plan's desired state as the new lockfile.
func (e *Environment) writeLockFor(p *Plan) error {
	l := &Lock{Version: LockVersion, Specs: map[string]json.RawMessage{}}
	seen := make(map[string]bool)
	for i, c := range p.Concrete {
		hash := c.FullHash()
		if seen[hash] {
			continue
		}
		seen[hash] = true
		l.Roots = append(l.Roots, LockRoot{Expr: e.Manifest.Specs[i], Hash: hash})
		data, err := syntax.EncodeJSON(c)
		if err != nil {
			return err
		}
		l.Specs[hash] = data
	}
	return writeLock(e.fs, e.LockPath(), l)
}

// Uninstall removes everything the lockfile pinned — again as one
// transaction — prunes this environment's links from the view, and
// retires the lockfile. The manifest stays, so `env install` can bring
// the environment back.
func (e *Environment) Uninstall(h *Host) (*Result, error) {
	lock, err := e.ReadLock()
	if err != nil {
		return nil, err
	}
	res := &Result{SkippedRemove: map[string]string{}}
	if len(lock.Roots) == 0 {
		return res, nil
	}

	t := txn.Begin(h.FS, h.Store.JournalDir())
	committed := false
	defer func() {
		if !committed {
			_ = t.Rollback()
		}
	}()

	seen := make(map[string]bool)
	for _, lr := range lock.Roots {
		if seen[lr.Hash] {
			continue
		}
		seen[lr.Hash] = true
		root, err := lock.Spec(lr.Hash)
		if err != nil {
			return nil, err
		}
		if err := e.stageRootRemoval(h, t, Change{Expr: lr.Expr, Hash: lr.Hash, Root: root}, res); err != nil {
			return nil, err
		}
	}
	if e.Manifest.View != nil {
		links, err := e.refreshView(h, t, nil, nil)
		if err != nil {
			return nil, err
		}
		res.Links = links
	}

	if err := t.Commit(h.Store.Applier()); err != nil {
		var ce *txn.CommitError
		if errors.As(err, &ce) {
			committed = true
		}
		return nil, err
	}
	committed = true

	if exists, _ := e.fs.Stat(e.LockPath()); exists {
		if err := e.fs.Remove(e.LockPath()); err != nil {
			return res, err
		}
	}
	return res, nil
}

// viewManager lazily builds this environment's view manager: a single
// catch-all link rule projecting into the view path, ranked by the
// manifest's conflict policy.
func (e *Environment) viewManager(h *Host) (*views.Manager, error) {
	if e.view != nil {
		return e.view, nil
	}
	v := e.Manifest.View
	scope := config.NewScope()
	if err := scope.AddLinkRule("", v.Path+"/"+v.ProjectionTemplate()); err != nil {
		return nil, err
	}
	m := views.NewManager(h.FS, &config.Config{User: scope}, h.IsMPI)
	m.Journal = h.Store.JournalDir()
	switch v.ConflictPolicy() {
	case "site":
		// Site policy pins the shared view to the site's compiler order,
		// ignoring both the host user scope and this manifest's overrides.
		var site *config.Scope
		if h.Config != nil {
			site = h.Config.Site
		}
		m.Rank = (&config.Config{Site: site}).CompilerRank
	default: // "user"
		envCfg, err := e.envConfig(h)
		if err != nil {
			return nil, err
		}
		m.Rank = envCfg.CompilerRank
	}
	e.view = m
	return m, nil
}

// refreshView stages the view's link delta for the desired root set.
func (e *Environment) refreshView(h *Host, t *txn.Txn, kept, added []Change) ([]views.Link, error) {
	m, err := e.viewManager(h)
	if err != nil {
		return nil, err
	}
	in, err := e.viewScope(h, kept, added)
	if err != nil {
		return nil, err
	}
	return m.StageRefresh(t, scopedQuerier{st: h.Store, in: in}, e.Manifest.View.Path)
}

// viewScope collects the full hashes allowed into the view: this
// environment's kept and added DAGs, plus the locked DAGs of any sibling
// environment sharing the same view path — two environments may co-own a
// view, and neither is allowed to prune the other's links away.
func (e *Environment) viewScope(h *Host, kept, added []Change) (map[string]bool, error) {
	in := make(map[string]bool)
	include := func(root *spec.Spec) {
		for _, n := range root.TopoOrder() {
			in[n.FullHash()] = true
		}
	}
	for _, ch := range kept {
		include(ch.Root)
	}
	for _, ch := range added {
		include(ch.Root)
	}
	parent := parentDir(e.Dir)
	for _, name := range List(e.fs, parent) {
		if name == e.Name {
			continue
		}
		o, err := Open(e.fs, parent, name)
		if err != nil || o.Manifest.View == nil || o.Manifest.View.Path != e.Manifest.View.Path {
			continue
		}
		lock, err := o.ReadLock()
		if err != nil {
			continue
		}
		for hash := range lock.Specs {
			root, err := lock.Spec(hash)
			if err != nil {
				return nil, fmt.Errorf("env: sibling %s: %w", name, err)
			}
			include(root)
		}
	}
	return in, nil
}

// scopedQuerier restricts a store snapshot to an allowed hash set, so an
// environment's view only ever projects the specs that belong in it.
type scopedQuerier struct {
	st store.Querier
	in map[string]bool
}

func (q scopedQuerier) Select(filter func(*store.Record) bool) []*store.Record {
	return q.st.Select(func(r *store.Record) bool {
		if !q.in[r.Spec.FullHash()] {
			return false
		}
		return filter == nil || filter(r)
	})
}

func (q scopedQuerier) Len() int { return len(q.Select(nil)) }

func parentDir(p string) string {
	if i := strings.LastIndex(p, "/"); i > 0 {
		return p[:i]
	}
	return "/"
}
