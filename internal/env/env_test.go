package env_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/env"
)

func newHost(t *testing.T) (*core.Spack, *env.Host) {
	t.Helper()
	s := core.MustNew()
	return s, s.EnvHost()
}

func TestCreateOpenAddRemoveList(t *testing.T) {
	s, _ := newHost(t)
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"zlib"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Create(s.FS, core.EnvRoot, "dev", nil); err == nil {
		t.Error("double create should fail")
	}
	if _, err := env.Create(s.FS, core.EnvRoot, "bad name", nil); err == nil {
		t.Error("name with a space should be rejected")
	}
	if err := e.AddSpec("libelf@0.8.13"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddSpec("libelf@0.8.13"); err == nil {
		t.Error("duplicate add should fail")
	}
	if err := e.AddSpec("!!nonsense"); err == nil {
		t.Error("unparseable spec should be rejected")
	}
	if err := e.RemoveSpec("zlib"); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveSpec("zlib"); err == nil {
		t.Error("removing an absent spec should fail")
	}

	// A fresh Open sees the saved manifest.
	back, err := env.Open(s.FS, core.EnvRoot, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Manifest.Specs) != 1 || back.Manifest.Specs[0] != "libelf@0.8.13" {
		t.Errorf("reloaded specs = %v", back.Manifest.Specs)
	}

	if _, err := env.Create(s.FS, core.EnvRoot, "aux", nil); err != nil {
		t.Fatal(err)
	}
	if names := env.List(s.FS, core.EnvRoot); len(names) != 2 || names[0] != "aux" || names[1] != "dev" {
		t.Errorf("list = %v", names)
	}
	if _, err := env.Open(s.FS, core.EnvRoot, "ghost"); err == nil {
		t.Error("opening a missing environment should fail")
	}
}

func TestApplyInstallsAndLocksAsOneUnit(t *testing.T) {
	s, h := newHost(t)
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"libdwarf", "zlib"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Builds) != 2 {
		t.Fatalf("builds = %d, want 2 roots", len(res.Builds))
	}
	lock, err := e.ReadLock()
	if err != nil {
		t.Fatal(err)
	}
	if len(lock.Roots) != 2 || lock.Roots[0].Expr != "libdwarf" || lock.Roots[1].Expr != "zlib" {
		t.Fatalf("lock roots = %+v", lock.Roots)
	}
	for _, lr := range lock.Roots {
		root, err := lock.Spec(lr.Hash)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range root.TopoOrder() {
			rec, ok := s.Store.Lookup(n)
			if !ok {
				t.Fatalf("%s not installed", n.Name)
			}
			if exists, _ := s.FS.Stat(h.Modules.FileName(n)); !exists {
				t.Errorf("module file missing for %s", n.Name)
			}
			_ = rec
		}
	}
	// Roots are explicit; dependencies are not.
	libdwarf, _ := lock.Spec(lock.Roots[0].Hash)
	if rec, _ := s.Store.Lookup(libdwarf); !rec.Explicit {
		t.Error("root should be explicit")
	}

	// An unchanged manifest re-applies as a no-op diff: nothing builds.
	again, err := e.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Plan.NoOp() || len(again.Builds) != 0 {
		t.Errorf("second apply should be a no-op: %+v", again.Plan)
	}

	// The journal is empty after a clean apply.
	if names, err := s.FS.List(s.Store.JournalDir()); err == nil && len(names) != 0 {
		t.Errorf("journal not empty: %v", names)
	}
}

func TestApplyDeltaAddsAndRemoves(t *testing.T) {
	s, h := newHost(t)
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"libdwarf"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	before := s.Store.Len()

	if err := e.AddSpec("zlib"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Add) != 1 || len(res.Plan.Keep) != 1 || len(res.Plan.Remove) != 0 {
		t.Fatalf("plan = add %d keep %d remove %d", len(res.Plan.Add), len(res.Plan.Keep), len(res.Plan.Remove))
	}
	if s.Store.Len() != before+1 {
		t.Errorf("store len = %d, want %d", s.Store.Len(), before+1)
	}

	// Removing the spec uninstalls its root: record gone, prefix gone,
	// module file gone — all in the same transaction.
	lock, _ := e.ReadLock()
	var zlibHash string
	for _, lr := range lock.Roots {
		if lr.Expr == "zlib" {
			zlibHash = lr.Hash
		}
	}
	zlibSpec, err := lock.Spec(zlibHash)
	if err != nil {
		t.Fatal(err)
	}
	zlibRec, _ := s.Store.Lookup(zlibSpec)

	if err := e.RemoveSpec("zlib"); err != nil {
		t.Fatal(err)
	}
	res, err = e.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0] != zlibHash {
		t.Fatalf("removed = %v", res.Removed)
	}
	if s.Store.IsInstalled(zlibSpec) {
		t.Error("zlib record survived removal")
	}
	if exists, _ := s.FS.Stat(zlibRec.Prefix); exists {
		t.Error("zlib prefix survived removal")
	}
	if exists, _ := s.FS.Stat(h.Modules.FileName(zlibSpec)); exists {
		t.Error("zlib module file survived removal")
	}
	lock, _ = e.ReadLock()
	if len(lock.Roots) != 1 || lock.Roots[0].Expr != "libdwarf" {
		t.Errorf("lock roots after removal = %+v", lock.Roots)
	}
}

func TestRemoveSkippedWhenHeldByDependent(t *testing.T) {
	s, h := newHost(t)
	// envA needs libdwarf (whose DAG contains libelf); envB pins the same
	// libelf configuration as a root.
	a, err := env.Create(s.FS, core.EnvRoot, "a", []string{"libdwarf"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(h); err != nil {
		t.Fatal(err)
	}
	lockA, _ := a.ReadLock()
	dwarf, _ := lockA.Spec(lockA.Roots[0].Hash)
	var libelfExpr string
	for _, n := range dwarf.TopoOrder() {
		if n.Name == "libelf" {
			v, _ := n.ConcreteVersion()
			libelfExpr = "libelf@" + v.String()
		}
	}
	if libelfExpr == "" {
		t.Fatal("libdwarf DAG has no libelf")
	}

	b, err := env.Create(s.FS, core.EnvRoot, "b", []string{libelfExpr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Apply(h); err != nil {
		t.Fatal(err)
	}
	// envB walks away from libelf; libdwarf still needs it, so the install
	// stays and the removal is reported as skipped.
	if err := b.RemoveSpec(libelfExpr); err != nil {
		t.Fatal(err)
	}
	res, err := b.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 || len(res.SkippedRemove) != 1 {
		t.Fatalf("removed=%v skipped=%v", res.Removed, res.SkippedRemove)
	}
	for _, why := range res.SkippedRemove {
		if !strings.Contains(why, "libdwarf") {
			t.Errorf("skip reason = %q", why)
		}
	}
}

func TestEnvProvidersOverride(t *testing.T) {
	s, h := newHost(t)
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"mpileaks"})
	if err != nil {
		t.Fatal(err)
	}
	e.Manifest.Providers = map[string][]string{"mpi": {"mvapich"}}
	if err := e.SaveManifest(); err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(h)
	if err != nil {
		t.Fatal(err)
	}
	found := ""
	for _, n := range p.Concrete[0].TopoOrder() {
		if s.IsMPI(n.Name) {
			found = n.Name
		}
	}
	if found != "mvapich" {
		t.Errorf("env provider override ignored: mpi = %q", found)
	}

	// The host's own concretizations are unaffected by the env override.
	plain, err := s.Spec("mpileaks")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range plain.TopoOrder() {
		if n.Name == "mvapich" {
			t.Error("env override leaked into host concretization")
		}
	}
}

func TestEnvCompilerOrderOverride(t *testing.T) {
	s, h := newHost(t)
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"zlib"})
	if err != nil {
		t.Fatal(err)
	}
	e.Manifest.CompilerOrder = "intel"
	if err := e.SaveManifest(); err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Concrete[0].Compiler.Name; got != "intel" {
		t.Errorf("compiler = %q, want intel", got)
	}
	plain, _ := s.Spec("zlib")
	if plain.Compiler.Name == "intel" {
		t.Error("env compiler order leaked into host concretization")
	}
}

func TestUninstallRemovesEverythingAndKeepsManifest(t *testing.T) {
	s, h := newHost(t)
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"libdwarf"})
	if err != nil {
		t.Fatal(err)
	}
	e.Manifest.View = &env.View{Path: "/spack/envs/dev/view"}
	if err := e.SaveManifest(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	if s.Store.Len() == 0 {
		t.Fatal("nothing installed")
	}
	res, err := e.Uninstall(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 {
		t.Errorf("removed = %v", res.Removed)
	}
	// The root is gone; the lockfile is retired; the manifest survives.
	if exists, _ := s.FS.Stat(e.LockPath()); exists {
		t.Error("lockfile survived uninstall")
	}
	if exists, _ := s.FS.Stat(e.ManifestPath()); !exists {
		t.Error("manifest should survive uninstall")
	}
	if links, err := s.FS.List("/spack/envs/dev/view"); err == nil {
		for _, name := range links {
			if s.FS.IsSymlink("/spack/envs/dev/view/" + name) {
				t.Errorf("view link %s survived uninstall", name)
			}
		}
	}
	// Reinstalling from the surviving manifest brings the env back.
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	if exists, _ := s.FS.Stat(e.LockPath()); !exists {
		t.Error("reinstall did not write a lockfile")
	}
}

func TestEnvViewLinksFollowTheDelta(t *testing.T) {
	s, h := newHost(t)
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"libelf@0.8.12"})
	if err != nil {
		t.Fatal(err)
	}
	view := "/spack/envs/dev/view"
	e.Manifest.View = &env.View{Path: view, Projection: "${PACKAGE}"}
	if err := e.SaveManifest(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	old, err := s.FS.Readlink(view + "/libelf")
	if err != nil {
		t.Fatalf("libelf link missing: %v", err)
	}

	// Adding a newer libelf retargets the projected link; the old root
	// leaves and its install goes with it.
	if err := e.RemoveSpec("libelf@0.8.12"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddSpec("libelf@0.8.13"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	now, err := s.FS.Readlink(view + "/libelf")
	if err != nil {
		t.Fatal(err)
	}
	if now == old {
		t.Error("link not retargeted to the new root")
	}
	if exists, _ := s.FS.Stat(old); exists {
		t.Error("old root prefix survived")
	}
}

// TestSharedViewConflictPolicies is the table-driven check that two
// environments sharing one view resolve link conflicts by the declared
// policy: "user" follows the owning environment's (user-scope) compiler
// order, "site" pins the site scope's order regardless of it.
func TestSharedViewConflictPolicies(t *testing.T) {
	cases := []struct {
		name     string
		conflict string
		want     string // compiler whose build the contested link targets
	}{
		{"user policy follows env order", "user", "intel"},
		{"site policy pins site order", "site", "gcc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, h := newHost(t)
			if err := s.Config.Site.SetCompilerOrder("gcc@4.9.2,intel"); err != nil {
				t.Fatal(err)
			}
			view := "/spack/envs/shared-view"

			// Environment a: the site-default gcc build.
			a, err := env.Create(s.FS, core.EnvRoot, "a", []string{"zlib%gcc@4.9.2"})
			if err != nil {
				t.Fatal(err)
			}
			a.Manifest.View = &env.View{Path: view, Projection: "${PACKAGE}", Conflict: tc.conflict}
			if err := a.SaveManifest(); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Apply(h); err != nil {
				t.Fatal(err)
			}

			// Environment b prefers intel and projects onto the same link.
			b, err := env.Create(s.FS, core.EnvRoot, "b", []string{"zlib%intel"})
			if err != nil {
				t.Fatal(err)
			}
			b.Manifest.View = &env.View{Path: view, Projection: "${PACKAGE}", Conflict: tc.conflict}
			b.Manifest.CompilerOrder = "intel,gcc@4.9.2"
			if err := b.SaveManifest(); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Apply(h); err != nil {
				t.Fatal(err)
			}

			target, err := s.FS.Readlink(view + "/zlib")
			if err != nil {
				t.Fatal(err)
			}
			lockB, _ := b.ReadLock()
			intelSpec, _ := lockB.Spec(lockB.Roots[0].Hash)
			intelRec, ok := s.Store.Lookup(intelSpec)
			if !ok {
				t.Fatal("intel build not installed")
			}
			lockA, _ := a.ReadLock()
			gccSpec, _ := lockA.Spec(lockA.Roots[0].Hash)
			gccRec, _ := s.Store.Lookup(gccSpec)

			want := gccRec.Prefix
			if tc.want == "intel" {
				want = intelRec.Prefix
			}
			if target != want {
				t.Errorf("contested link -> %q, want the %s build %q", target, tc.want, want)
			}
		})
	}
}

// TestRemoveExposesShadowedInstall: when the preferred install leaves the
// environment, the contested link falls back to the configuration it had
// been shadowing instead of disappearing.
func TestRemoveExposesShadowedInstall(t *testing.T) {
	s, h := newHost(t)
	view := "/spack/envs/dev/view"
	e, err := env.Create(s.FS, core.EnvRoot, "dev", []string{"libelf@0.8.12", "libelf@0.8.13"})
	if err != nil {
		t.Fatal(err)
	}
	e.Manifest.View = &env.View{Path: view, Projection: "${PACKAGE}"}
	if err := e.SaveManifest(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	lock, _ := e.ReadLock()
	prefixes := map[string]string{} // version expr -> prefix
	for _, lr := range lock.Roots {
		sp, _ := lock.Spec(lr.Hash)
		rec, _ := s.Store.Lookup(sp)
		prefixes[lr.Expr] = rec.Prefix
	}
	if tgt, _ := s.FS.Readlink(view + "/libelf"); tgt != prefixes["libelf@0.8.13"] {
		t.Fatalf("newer version should win the link: %q", tgt)
	}

	// Drop the winner: the link must retarget to the shadowed 0.8.12.
	if err := e.RemoveSpec("libelf@0.8.13"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	if tgt, _ := s.FS.Readlink(view + "/libelf"); tgt != prefixes["libelf@0.8.12"] {
		t.Errorf("shadowed install not exposed: link -> %q, want %q", tgt, prefixes["libelf@0.8.12"])
	}
}
