package env_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/build"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/env"
	"repro/internal/modules"
	"repro/internal/repo"
	"repro/internal/simfs"
	"repro/internal/store"
)

// The crash tests assemble hosts by hand (instead of core.New) so every
// layer shares one fault-injectable filesystem.

const (
	crashEnvRoot = "/spack/envs"
	crashViewDir = "/spack/envs/dev/view"
)

func crashHost(t *testing.T, fs *simfs.FS) (*env.Host, error) {
	t.Helper()
	st, err := store.New(fs, "/spack/opt", store.SpackLayout{})
	if err != nil {
		return nil, err
	}
	path := repo.NewPath(repo.Builtin())
	cfg := config.New()
	reg := compiler.LLNLRegistry()
	b := build.NewBuilder(st, path, reg)
	b.Config = cfg
	return &env.Host{
		FS: fs, Config: cfg, Repos: path, Compilers: reg,
		Store: st, Builder: b,
		Modules: &modules.Generator{FS: fs, Root: "/spack/share", Kind: modules.KindDotkit},
	}, nil
}

func crashEnv(fs *simfs.FS) (*env.Environment, error) {
	e, err := env.Create(fs, crashEnvRoot, "dev", []string{"libdwarf"})
	if err != nil {
		return nil, err
	}
	e.Manifest.View = &env.View{Path: crashViewDir, Projection: "${PACKAGE}"}
	return e, e.SaveManifest()
}

// crashSnapshot captures everything the transactional guarantee covers:
// the store index (from a freshly opened store), every file under the
// install tree and module root, and every view link with its target. The
// lockfile and manifest are deliberately out of scope — the lock is
// written after the commit point by design.
func crashSnapshot(t *testing.T, fs *simfs.FS, st *store.Store) string {
	t.Helper()
	var b strings.Builder
	for _, r := range st.Select(nil) {
		fmt.Fprintf(&b, "rec %s %s explicit=%v %s\n",
			r.Spec.FullHash(), r.Prefix, r.Explicit, store.RecordOrigin(r))
	}
	for _, dir := range []string{"/spack/opt", "/spack/share", crashViewDir} {
		err := fs.Walk(dir, func(p string, isLink bool) error {
			if strings.HasPrefix(p, "/spack/opt/.spack-db") {
				return nil // database shards and journal are the mechanism, not the state
			}
			if isLink {
				tgt, _ := fs.Readlink(p)
				fmt.Fprintf(&b, "lnk %s -> %s\n", p, tgt)
			} else {
				fmt.Fprintf(&b, "file %s\n", p)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", dir, err)
		}
	}
	return b.String()
}

// reopen models the next process: load the database from disk and run
// journal recovery, exactly what store.Open does at startup.
func reopen(t *testing.T, fs *simfs.FS) *store.Store {
	t.Helper()
	st, err := store.Open(fs, "/spack/opt", store.SpackLayout{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	if names, _ := fs.List(st.JournalDir()); len(names) != 0 {
		t.Fatalf("journal not drained after recovery: %v", names)
	}
	return st
}

// TestEnvApplyCrashRecovery injects a fault at every successive filesystem
// operation of `env install` — builds, index mutations, module files and
// view links all in one transaction — and proves the recovered system is
// always exactly the pre- or the post-state, never in between.
func TestEnvApplyCrashRecovery(t *testing.T) {
	// Reference states from clean runs.
	preFS := simfs.New(simfs.TempFS)
	preHost, err := crashHost(t, preFS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crashEnv(preFS); err != nil {
		t.Fatal(err)
	}
	pre := crashSnapshot(t, preFS, preHost.Store)

	postFS := simfs.New(simfs.TempFS)
	postHost, err := crashHost(t, postFS)
	if err != nil {
		t.Fatal(err)
	}
	ePost, err := crashEnv(postFS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ePost.Apply(postHost); err != nil {
		t.Fatal(err)
	}
	post := crashSnapshot(t, postFS, postHost.Store)
	if pre == post {
		t.Fatal("pre and post states are identical; the scenario tests nothing")
	}

	sawPre, sawPost := false, false
	for _, op := range []string{"write", "rename", "symlink", "remove", "mkdir"} {
		t.Run(op, func(t *testing.T) {
			for n := 0; ; n++ {
				if n > 5000 {
					t.Fatal("fault sweep did not reach a clean run")
				}
				healthy := simfs.New(simfs.TempFS)
				faulty := healthy.FailAfter(op, n)
				failed := false
				h, err := crashHost(t, faulty)
				if err == nil {
					var e *env.Environment
					if e, err = crashEnv(faulty); err == nil {
						_, err = e.Apply(h)
					}
				}
				failed = err != nil

				st2 := reopen(t, healthy)
				got := crashSnapshot(t, healthy, st2)
				switch got {
				case pre:
					sawPre = true
				case post:
					sawPost = true
				default:
					t.Fatalf("%s fault at op %d: recovered state is neither pre nor post:\n--- got ---\n%s--- pre ---\n%s--- post ---\n%s",
						op, n, got, pre, post)
				}
				if !failed {
					if got != post {
						t.Fatalf("%s at %d: apply succeeded but state is not post", op, n)
					}
					break // fault budget exhausted without tripping: sweep done
				}
			}
		})
	}
	if !sawPre || !sawPost {
		t.Errorf("sweep saw pre=%v post=%v; want both outcomes", sawPre, sawPost)
	}
}

// TestEnvUninstallCrashRecovery is the reverse direction: faults injected
// while a whole environment is being uninstalled (record removals, prefix
// deletions, module-file removals, view pruning as one transaction) must
// leave the recovered system exactly installed or exactly uninstalled.
func TestEnvUninstallCrashRecovery(t *testing.T) {
	// install builds the environment cleanly on a healthy filesystem and
	// returns everything the uninstall needs.
	install := func(t *testing.T, fs *simfs.FS) *env.Host {
		h, err := crashHost(t, fs)
		if err != nil {
			t.Fatal(err)
		}
		e, err := crashEnv(fs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Apply(h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	preFS := simfs.New(simfs.TempFS)
	preHost := install(t, preFS)
	pre := crashSnapshot(t, preFS, preHost.Store)

	postFS := simfs.New(simfs.TempFS)
	postHost := install(t, postFS)
	ePost, err := env.Open(postFS, crashEnvRoot, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ePost.Uninstall(postHost); err != nil {
		t.Fatal(err)
	}
	post := crashSnapshot(t, postFS, postHost.Store)
	if pre == post {
		t.Fatal("pre and post states are identical; the scenario tests nothing")
	}

	sawPre, sawPost := false, false
	for _, op := range []string{"write", "rename", "symlink", "remove", "mkdir"} {
		t.Run(op, func(t *testing.T) {
			for n := 0; ; n++ {
				if n > 5000 {
					t.Fatal("fault sweep did not reach a clean run")
				}
				healthy := simfs.New(simfs.TempFS)
				h := install(t, healthy)

				// The crashing process sees faults only from here on.
				faulty := healthy.FailAfter(op, n)
				h.FS = faulty
				h.Store.FS = faulty
				h.Modules.FS = faulty
				e, err := env.Open(faulty, crashEnvRoot, "dev")
				if err == nil {
					_, err = e.Uninstall(h)
				}
				failed := err != nil

				st2 := reopen(t, healthy)
				got := crashSnapshot(t, healthy, st2)
				switch got {
				case pre:
					sawPre = true
				case post:
					sawPost = true
				default:
					t.Fatalf("%s fault at op %d: recovered state is neither pre nor post:\n--- got ---\n%s--- pre ---\n%s--- post ---\n%s",
						op, n, got, pre, post)
				}
				if !failed {
					if got != post {
						t.Fatalf("%s at %d: uninstall succeeded but state is not post", op, n)
					}
					break
				}
			}
		})
	}
	if !sawPre || !sawPost {
		t.Errorf("sweep saw pre=%v post=%v; want both outcomes", sawPre, sawPost)
	}
}
