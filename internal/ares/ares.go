// Package ares defines the ARES multi-physics software stack of SC'15
// §4.4: the 47-package dependency DAG of Fig. 13 — ARES itself, 11 LLNL
// physics packages, 4 math/meshing libraries, 8 utility libraries, and 23
// external packages — and the nightly test matrix of Table 3 (four code
// configurations across architecture-compiler-MPI combinations). The LLNL
// packages live in their own "llnl.ares" repository namespace, modeling
// §4.3.2's site-specific repositories; the external packages come from the
// builtin repository.
package ares

import (
	"repro/internal/fetch"
	"repro/internal/pkg"
	"repro/internal/repo"
	"repro/internal/spec"
	"repro/internal/syntax"
	"repro/internal/version"
)

// PackageType classifies the Fig. 13 nodes.
type PackageType int

const (
	// TypePhysics marks LLNL physics packages (red in Fig. 13).
	TypePhysics PackageType = iota
	// TypeMath marks LLNL math/meshing libraries.
	TypeMath
	// TypeUtility marks LLNL utility libraries.
	TypeUtility
	// TypeExternal marks open-source external packages.
	TypeExternal
	// TypeCode marks ARES itself.
	TypeCode
)

func (t PackageType) String() string {
	switch t {
	case TypePhysics:
		return "physics"
	case TypeMath:
		return "math"
	case TypeUtility:
		return "utility"
	case TypeExternal:
		return "external"
	case TypeCode:
		return "code"
	}
	return "unknown"
}

// Classification maps every package that can appear in the ARES DAG to its
// Fig. 13 category. MPI/BLAS/LAPACK providers count as external.
var Classification = map[string]PackageType{
	"ares": TypeCode,
	// 11 physics packages.
	"matprop": TypePhysics, "leos": TypePhysics, "mslib": TypePhysics,
	"laser": TypePhysics, "cretin": TypePhysics, "tdf": TypePhysics,
	"cheetah": TypePhysics, "dsd": TypePhysics, "teton": TypePhysics,
	"nuclear": TypePhysics, "asclaser": TypePhysics,
	// 4 math/meshing libraries.
	"overlink": TypeMath, "qd": TypeMath, "samrai": TypeMath, "hypre": TypeMath,
	// 8 utility libraries.
	"bdivxml": TypeUtility, "sgeos-xml": TypeUtility, "scallop": TypeUtility,
	"rng": TypeUtility, "perflib": TypeUtility, "memusage": TypeUtility,
	"timers": TypeUtility, "opclient": TypeUtility,
	// External packages (including virtual-interface providers).
	"tcl": TypeExternal, "tk": TypeExternal, "py-scipy": TypeExternal,
	"py-numpy": TypeExternal, "python": TypeExternal, "cmake": TypeExternal,
	"hpdf": TypeExternal, "boost": TypeExternal, "zlib": TypeExternal,
	"bzip2": TypeExternal, "gsl": TypeExternal, "hdf5": TypeExternal,
	"gperftools": TypeExternal, "papi": TypeExternal, "ga": TypeExternal,
	"silo": TypeExternal, "ncurses": TypeExternal, "sqlite": TypeExternal,
	"readline": TypeExternal, "openssl": TypeExternal,
	"mpich": TypeExternal, "mvapich": TypeExternal, "mvapich2": TypeExternal,
	"openmpi": TypeExternal, "bgq-mpi": TypeExternal, "cray-mpi": TypeExternal,
	"atlas": TypeExternal, "netlib-blas": TypeExternal, "mkl": TypeExternal,
	"netlib-lapack": TypeExternal, "hwloc": TypeExternal,
	"py-setuptools": TypeExternal,
}

func addVersions(p *pkg.Package, versions ...string) *pkg.Package {
	for _, v := range versions {
		p.WithVersion(v, fetch.Checksum(p.Name, version.MustParse(v)))
	}
	return p
}

// Repo builds the llnl.ares site repository containing ARES and the LLNL
// physics/math/utility packages.
func Repo() *repo.Repo {
	r := repo.NewRepo("llnl.ares")

	llnlLib := func(name, desc string, units int, deps ...string) *pkg.Package {
		p := pkg.New(name).Describe(desc).WithBuild("autotools", units)
		for _, d := range deps {
			p.DependsOn(d)
		}
		addVersions(p, "1.0", "2.0")
		r.MustAdd(p)
		return p
	}

	// Utility libraries (logging, I/O, performance measurement).
	llnlLib("bdivxml", "LLNL XML utility library.", 6)
	llnlLib("sgeos-xml", "Geometry XML schema library.", 6, "bdivxml")
	llnlLib("scallop", "Scalable I/O utility library.", 10, "mpi")
	llnlLib("rng", "Parallel random number generators.", 5)
	llnlLib("perflib", "Performance measurement library.", 8, "papi")
	llnlLib("memusage", "Memory usage tracking library.", 4)
	llnlLib("timers", "Hierarchical timer library.", 4)
	llnlLib("opclient", "Operations database client.", 7)

	// Math/meshing: overlink here; qd, samrai, hypre come from builtin.
	llnlLib("overlink", "Overset grid remapping library.", 20, "silo")

	// Physics packages.
	llnlLib("matprop", "Material properties database.", 15, "sgeos-xml")
	llnlLib("leos", "Equation-of-state library (LEOS).", 25, "hdf5", "matprop")
	llnlLib("mslib", "Material strength library.", 12, "matprop")
	llnlLib("laser", "Laser ray-trace physics.", 18, "mpi", "rng")
	llnlLib("cretin", "Atomic kinetics / NLTE physics.", 30, "mpi", "hdf5")
	llnlLib("tdf", "Thermonuclear data functions.", 8)
	llnlLib("cheetah", "Thermochemical equilibrium code.", 22, "gsl")
	llnlLib("dsd", "Detonation shock dynamics.", 14, "qd")
	llnlLib("teton", "Deterministic radiation transport (Teton).", 35, "mpi", "hypre")
	llnlLib("nuclear", "Nuclear reaction data library.", 10, "tdf")
	llnlLib("asclaser", "ASC laser package.", 16, "laser")

	// ARES itself: four code configurations (Table 3) — current (15.07),
	// previous (14.11), development (develop), and the "lite" variant with
	// a smaller feature and dependency set.
	ares := pkg.New("ares").
		Describe("LLNL 1/2/3-D radiation hydrodynamics code (ARES).").
		WithVariant("lite", false, "Build the reduced feature set").
		WithBuild("cmake", 400).
		// Physics.
		DependsOn("matprop").
		DependsOn("leos").
		DependsOn("mslib").
		DependsOn("tdf").
		DependsOn("cheetah").
		DependsOn("dsd").
		DependsOn("teton").
		DependsOn("nuclear").
		DependsOn("laser", pkg.When("~lite")).
		DependsOn("cretin", pkg.When("~lite")).
		DependsOn("asclaser", pkg.When("~lite")).
		// Math/meshing.
		DependsOn("overlink").
		DependsOn("qd").
		DependsOn("samrai").
		DependsOn("hypre").
		// Utilities.
		DependsOn("bdivxml").
		DependsOn("sgeos-xml").
		DependsOn("scallop").
		DependsOn("rng").
		DependsOn("perflib").
		DependsOn("memusage").
		DependsOn("timers").
		DependsOn("opclient").
		// Externals. ARES builds its own Python (§4.4), except in lite.
		DependsOn("silo").
		DependsOn("hdf5").
		DependsOn("gperftools").
		DependsOn("papi").
		DependsOn("ga").
		DependsOn("hpdf").
		DependsOn("boost").
		DependsOn("gsl").
		DependsOn("cmake", pkg.BuildOnly()).
		DependsOn("mpi").
		DependsOn("blas").
		DependsOn("lapack").
		DependsOn("python@2.7.9", pkg.When("~lite")).
		DependsOn("py-scipy", pkg.When("~lite")).
		DependsOn("py-numpy", pkg.When("~lite")).
		DependsOn("tcl", pkg.When("~lite")).
		DependsOn("tk", pkg.When("~lite")).
		// The development line tracks a newer gperftools.
		DependsOn("gperftools@2.4", pkg.When("@develop"))
	addVersions(ares, "14.11", "15.07", "develop")
	r.MustAdd(ares)

	return r
}

// CodeConfig is one of the four ARES configurations of Table 3.
type CodeConfig byte

const (
	// Current production.
	Current CodeConfig = 'C'
	// Previous production.
	Previous CodeConfig = 'P'
	// Lite feature set.
	Lite CodeConfig = 'L'
	// Development version.
	Development CodeConfig = 'D'
)

// Spec returns the abstract spec expression for a configuration.
func (c CodeConfig) Spec() string {
	switch c {
	case Current:
		return "ares@15.07"
	case Previous:
		return "ares@14.11"
	case Lite:
		return "ares@15.07+lite"
	case Development:
		return "ares@develop"
	}
	return "ares"
}

func (c CodeConfig) String() string { return string(c) }

// Cell is one architecture-compiler-MPI combination of Table 3 with the
// configurations tested there.
type Cell struct {
	Arch     string
	Compiler string // spec syntax after %, e.g. "intel@14"
	MPI      string // MPI provider package name
	Configs  []CodeConfig
}

// Matrix returns the nightly-test matrix of Table 3: 36 configurations
// across architecture-compiler-MPI combinations.
func Matrix() []Cell {
	all := []CodeConfig{Current, Previous, Lite, Development}
	return []Cell{
		{Arch: "linux-x86_64", Compiler: "gcc", MPI: "mvapich", Configs: all},
		{Arch: "linux-x86_64", Compiler: "gcc", MPI: "openmpi", Configs: all},
		{Arch: "linux-x86_64", Compiler: "intel@14", MPI: "mvapich", Configs: all},
		{Arch: "linux-x86_64", Compiler: "intel@15", MPI: "mvapich", Configs: all},
		{Arch: "cray-xe6", Compiler: "intel@15", MPI: "cray-mpi", Configs: []CodeConfig{Development}},
		{Arch: "linux-x86_64", Compiler: "pgi", MPI: "mvapich", Configs: []CodeConfig{Development}},
		{Arch: "linux-x86_64", Compiler: "pgi", MPI: "mvapich2", Configs: all},
		{Arch: "cray-xe6", Compiler: "pgi", MPI: "cray-mpi", Configs: []CodeConfig{Current, Lite, Development}},
		{Arch: "linux-x86_64", Compiler: "clang", MPI: "mvapich", Configs: all},
		{Arch: "bgq", Compiler: "clang", MPI: "bgq-mpi", Configs: []CodeConfig{Current, Lite, Development}},
		{Arch: "bgq", Compiler: "xl", MPI: "bgq-mpi", Configs: all},
	}
}

// MatrixSize returns the total number of configurations in the matrix
// (the paper's "36 different build configurations").
func MatrixSize() int {
	n := 0
	for _, c := range Matrix() {
		n += len(c.Configs)
	}
	return n
}

// SpecFor renders the full abstract spec for one cell and configuration:
// code config + compiler + architecture + forced MPI provider.
func SpecFor(c Cell, cfg CodeConfig) string {
	return cfg.Spec() + " %" + c.Compiler + " =" + c.Arch + " ^" + c.MPI
}

// MatrixEntry pairs one matrix configuration with its parsed abstract spec,
// in the deterministic order Matrix enumerates cells.
type MatrixEntry struct {
	Cell     Cell
	Config   CodeConfig
	Abstract *spec.Spec
}

// MatrixEntries expands the Table 3 matrix into its 36 configurations with
// pre-parsed abstract specs — the batch the nightly automation hands to
// concretize.ConcretizeAll so independent configurations solve in parallel
// against one shared memo cache.
func MatrixEntries() []MatrixEntry {
	var out []MatrixEntry
	for _, cell := range Matrix() {
		for _, cfg := range cell.Configs {
			out = append(out, MatrixEntry{
				Cell:     cell,
				Config:   cfg,
				Abstract: syntax.MustParse(SpecFor(cell, cfg)),
			})
		}
	}
	return out
}
