package ares

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/concretize"
	"repro/internal/config"
	"repro/internal/repo"
	"repro/internal/spec"
	"repro/internal/syntax"
)

func testConcretizer() *concretize.Concretizer {
	path := repo.NewPath(Repo(), repo.Builtin())
	return concretize.New(path, config.New(), compiler.LLNLRegistry())
}

// TestFig13DAG reproduces Fig. 13: the production ARES configuration is a
// 47-package DAG with 1 code, 11 physics, 4 math, 8 utility and 23
// external packages.
func TestFig13DAG(t *testing.T) {
	c := testConcretizer()
	s, err := c.Concretize(syntax.MustParse(Current.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Size(); got != 47 {
		t.Errorf("ARES DAG size = %d, want 47:\n%s", got, s.TreeString())
	}
	counts := make(map[PackageType]int)
	s.Traverse(func(n *spec.Spec) bool {
		ty, ok := Classification[n.Name]
		if !ok {
			t.Errorf("package %s missing from classification", n.Name)
			return true
		}
		counts[ty]++
		return true
	})
	want := map[PackageType]int{
		TypeCode: 1, TypePhysics: 11, TypeMath: 4, TypeUtility: 8, TypeExternal: 23,
	}
	for ty, n := range want {
		if counts[ty] != n {
			t.Errorf("%s count = %d, want %d", ty, counts[ty], n)
		}
	}
}

// TestLiteIsSmaller: the L configuration has a reduced dependency set.
func TestLiteIsSmaller(t *testing.T) {
	c := testConcretizer()
	full, err := c.Concretize(syntax.MustParse(Current.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	lite, err := c.Concretize(syntax.MustParse(Lite.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	if lite.Size() >= full.Size() {
		t.Errorf("lite (%d nodes) should be smaller than full (%d)", lite.Size(), full.Size())
	}
	for _, excluded := range []string{"laser", "cretin", "asclaser", "python", "py-scipy", "tcl", "tk"} {
		if lite.Dep(excluded) != nil {
			t.Errorf("lite build should not include %s", excluded)
		}
	}
	// Core physics still present.
	for _, included := range []string{"teton", "leos", "hypre", "samrai"} {
		if lite.Dep(included) == nil {
			t.Errorf("lite build missing %s", included)
		}
	}
}

// TestAresBuildsOwnPython: §4.4 — ARES builds Python 2.7.9 even where the
// native stack does not support it.
func TestAresBuildsOwnPython(t *testing.T) {
	c := testConcretizer()
	s, err := c.Concretize(syntax.MustParse("ares@15.07 %xl =bgq ^bgq-mpi"))
	if err != nil {
		t.Fatal(err)
	}
	py := s.Dep("python")
	if py == nil {
		t.Fatal("no python in bgq ARES DAG")
	}
	if v, _ := py.ConcreteVersion(); v.String() != "2.7.9" {
		t.Errorf("python version = %s, want 2.7.9", v)
	}
	// The BG/Q XL patch applies (§3.2.4).
	if py.Arch != "bgq" || py.Compiler.Name != "xl" {
		t.Errorf("python node = %s", py)
	}
}

// TestMatrixSize: Table 3 has 36 configurations.
func TestMatrixSize(t *testing.T) {
	if got := MatrixSize(); got != 36 {
		t.Errorf("matrix size = %d, want 36", got)
	}
	// 11 arch-compiler-MPI combinations, each with <= 4 configs.
	cells := Matrix()
	if len(cells) != 11 {
		t.Errorf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if len(c.Configs) == 0 || len(c.Configs) > 4 {
			t.Errorf("cell %+v has %d configs", c, len(c.Configs))
		}
	}
}

// TestTable3AllConfigurationsConcretize: every cell of Table 3
// concretizes — the automation the paper reports ("36 different
// configurations have been run using Spack").
func TestTable3AllConfigurationsConcretize(t *testing.T) {
	c := testConcretizer()
	for _, cell := range Matrix() {
		for _, cfg := range cell.Configs {
			expr := SpecFor(cell, cfg)
			s, err := c.Concretize(syntax.MustParse(expr))
			if err != nil {
				t.Errorf("cell %s/%s/%s config %s: %v", cell.Arch, cell.Compiler, cell.MPI, cfg, err)
				continue
			}
			if !s.Concrete() {
				t.Errorf("%s: not concrete", expr)
			}
			// The requested MPI is in the DAG.
			if s.Dep(cell.MPI) == nil {
				t.Errorf("%s: MPI %s not in DAG", expr, cell.MPI)
			}
			// The whole DAG uses the requested architecture.
			s.Traverse(func(n *spec.Spec) bool {
				if n.Arch != cell.Arch {
					t.Errorf("%s: node %s arch %s", expr, n.Name, n.Arch)
					return false
				}
				return true
			})
		}
	}
}

// TestConfigSpecs: the four code configurations map to distinct specs.
func TestConfigSpecs(t *testing.T) {
	seen := make(map[string]bool)
	for _, cfg := range []CodeConfig{Current, Previous, Lite, Development} {
		s := cfg.Spec()
		if seen[s] {
			t.Errorf("duplicate config spec %q", s)
		}
		seen[s] = true
		if _, err := syntax.Parse(s); err != nil {
			t.Errorf("config %s spec %q does not parse: %v", cfg, s, err)
		}
	}
	if Current.String() != "C" || Development.String() != "D" {
		t.Error("config letters wrong")
	}
}

// TestDevelopmentExtraDeps: the development line pins the newer
// gperftools (its conditional dependency).
func TestDevelopmentExtraDeps(t *testing.T) {
	c := testConcretizer()
	s, err := c.Concretize(syntax.MustParse(Development.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	gp := s.Dep("gperftools")
	if gp == nil {
		t.Fatal("gperftools missing")
	}
	if v, _ := gp.ConcreteVersion(); v.String() != "2.4" {
		t.Errorf("develop gperftools = %s, want 2.4", v)
	}
	// Current production takes the default (newest) too but without the
	// explicit pin; both must concretize to valid versions.
	cur, err := c.Concretize(syntax.MustParse(Current.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	if cur.Dep("gperftools") == nil {
		t.Error("current gperftools missing")
	}
}

// TestSiteRepoOverride: the llnl.ares namespace wins over builtin for
// names it defines, and records its namespace on concretized nodes.
func TestSiteRepoOverride(t *testing.T) {
	c := testConcretizer()
	s, err := c.Concretize(syntax.MustParse("ares@15.07"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Namespace != "llnl.ares" {
		t.Errorf("ares namespace = %q", s.Namespace)
	}
	if got := s.Dep("boost").Namespace; got != "builtin" {
		t.Errorf("boost namespace = %q", got)
	}
}
