package splice_test

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"repro/internal/simfs"
	"repro/internal/spec"
	"repro/internal/store"
)

// The crash sweep injects a fault at every successive filesystem
// operation of a full splice run and proves the recovered site is always
// exactly the pre- or the post-splice state — never in between: no
// half-materialized prefix, no record without its prefix, no lockfile
// pointing at a hash that is not installed. State is judged from a
// reopened store (journal recovery included), the way the next process
// would see the disk.

var crashOps = []string{"write", "rename", "symlink", "remove", "mkdir"}

// spliceSnapshot captures everything the pre-or-post guarantee covers:
// the recovered store index plus every file (with a content digest — the
// lockfile rewrite changes bytes, not names) and symlink under the
// layers a splice touches.
func spliceSnapshot(t *testing.T, fs *simfs.FS) string {
	t.Helper()
	st, err := store.Open(fs, storeRoot, store.SpackLayout{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	if names, _ := fs.List(st.JournalDir()); len(names) != 0 {
		t.Fatalf("journal not drained after recovery: %v", names)
	}
	var b strings.Builder
	for _, r := range st.Select(nil) {
		fmt.Fprintf(&b, "rec %s %s explicit=%v origin=%s from=%s lineage=%v\n",
			r.Spec.FullHash(), r.Prefix, r.Explicit, store.RecordOrigin(r),
			r.SplicedFrom, r.Lineage)
	}
	for _, dir := range []string{storeRoot, moduleRoot, viewRoot, envRoot} {
		err := fs.Walk(dir, func(p string, isLink bool) error {
			if strings.HasPrefix(p, storeRoot+"/.spack-db") {
				return nil // shards and journal are the mechanism, not the state
			}
			if isLink {
				tgt, _ := fs.Readlink(p)
				fmt.Fprintf(&b, "lnk %s -> %s\n", p, tgt)
			} else {
				data, _ := fs.ReadFile(p)
				sum := sha256.Sum256(data)
				fmt.Fprintf(&b, "file %s %x\n", p, sum[:8])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", dir, err)
		}
	}
	return b.String()
}

// swapFS points every layer of the machine at the fault-armed filesystem.
func (m *machine) swapFS(fs *simfs.FS) {
	m.FS = fs
	m.Store.FS = fs
	m.Modules.FS = fs
	m.Views.FS = fs
	if m.Backend != nil {
		m.Backend.FS = fs
	}
}

// TestSpliceCrashRecovery faults every filesystem operation of a splice
// that rewires libdwarf onto a newer libelf — cone prefix, index record,
// module file, view links, and environment lockfile in one transaction.
func TestSpliceCrashRecovery(t *testing.T) {
	type fixture struct {
		m    *machine
		root *spec.Spec
		repl *spec.Spec
	}
	setup := func(t *testing.T, fs *simfs.FS) *fixture {
		t.Helper()
		m := newMachine(t, fs)
		root := m.install(t, "libdwarf ^libelf@0.8.12")
		if _, err := m.Cache.PushDAG(m.Store, root); err != nil {
			t.Fatal(err)
		}
		repl := m.install(t, "libelf@0.8.13")
		lockEnv(t, m, "dev", root)
		return &fixture{m: m, root: root, repl: repl}
	}
	run := func(f *fixture) error {
		_, err := f.m.splicer().Run(f.root, "libelf", f.repl, false)
		return err
	}

	preFS := simfs.New(simfs.TempFS)
	setup(t, preFS)
	pre := spliceSnapshot(t, preFS)

	postFS := simfs.New(simfs.TempFS)
	fPost := setup(t, postFS)
	if err := run(fPost); err != nil {
		t.Fatal(err)
	}
	post := spliceSnapshot(t, postFS)
	if pre == post {
		t.Fatal("pre and post states are identical; the scenario tests nothing")
	}

	sawPre, sawPost := false, false
	for _, op := range crashOps {
		t.Run(op, func(t *testing.T) {
			for n := 0; ; n++ {
				if n > 5000 {
					t.Fatal("fault sweep did not reach a clean run")
				}
				healthy := simfs.New(simfs.TempFS)
				f := setup(t, healthy)

				// The crashing process sees faults only from here on.
				faulty := healthy.FailAfter(op, n)
				f.m.swapFS(faulty)
				err := run(f)
				failed := err != nil

				got := spliceSnapshot(t, healthy)
				switch got {
				case pre:
					sawPre = true
				case post:
					sawPost = true
				default:
					t.Fatalf("%s fault at op %d: recovered state is neither pre nor post:\n--- got ---\n%s--- pre ---\n%s--- post ---\n%s",
						op, n, got, pre, post)
				}
				if !failed {
					if got != post {
						t.Fatalf("%s at %d: run succeeded but state is not post", op, n)
					}
					break // fault budget exhausted without tripping: sweep done
				}
			}
		})
	}
	if !sawPre || !sawPost {
		t.Errorf("sweep saw pre=%v post=%v; want both outcomes", sawPre, sawPost)
	}
}
