package splice_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/build"
	"repro/internal/buildcache"
	"repro/internal/buildenv"
	"repro/internal/compiler"
	"repro/internal/concretize"
	"repro/internal/config"
	"repro/internal/env"
	"repro/internal/fetch"
	"repro/internal/modules"
	"repro/internal/repo"
	"repro/internal/simfs"
	"repro/internal/spec"
	"repro/internal/splice"
	"repro/internal/store"
	"repro/internal/syntax"
	"repro/internal/txn"
	"repro/internal/views"
)

const (
	storeRoot  = "/spack/opt"
	moduleRoot = "/spack/share"
	cacheDir   = "/spack/mirror/build_cache"
	viewRoot   = "/spack/views"
	envRoot    = "/spack/envs"
)

// machine wires every layer a splice touches over one filesystem.
type machine struct {
	FS      *simfs.FS
	Store   *store.Store
	Builder *build.Builder
	Conc    *concretize.Concretizer
	Modules *modules.Generator
	Views   *views.Manager
	Backend *buildcache.FSBackend
	Cache   *buildcache.Cache
}

func newMachine(t *testing.T, fs *simfs.FS) *machine {
	t.Helper()
	st, err := store.New(fs, storeRoot, store.SpackLayout{})
	if err != nil {
		t.Fatal(err)
	}
	path := repo.NewPath(repo.Builtin())
	cfg := config.New()
	if err := cfg.Site.AddLinkRule("", viewRoot+"/${PACKAGE}"); err != nil {
		t.Fatal(err)
	}
	reg := compiler.LLNLRegistry()
	b := build.NewBuilder(st, path, reg)
	mirror := fetch.NewMirror()
	repo.PublishAll(mirror, repo.Builtin())
	b.Mirror = mirror
	b.Config = cfg
	be, err := buildcache.NewFSBackend(fs, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	vm := views.NewManager(fs, cfg, nil)
	vm.Journal = st.JournalDir()
	return &machine{
		FS: fs, Store: st, Builder: b,
		Conc:    concretize.New(path, cfg, reg),
		Modules: &modules.Generator{FS: fs, Root: moduleRoot, Kind: modules.KindDotkit},
		Views:   vm, Backend: be, Cache: buildcache.New(be),
	}
}

func (m *machine) install(t *testing.T, expr string) *spec.Spec {
	t.Helper()
	concrete, err := m.Conc.Concretize(syntax.MustParse(expr))
	if err != nil {
		t.Fatalf("concretize %q: %v", expr, err)
	}
	if _, err := m.Builder.Build(concrete); err != nil {
		t.Fatalf("build %q: %v", expr, err)
	}
	// Per-node install transactions leave database persistence to the
	// caller; persist so reopening processes — the crash sweep's recovery
	// checks — see the records.
	if err := m.Store.Save(); err != nil {
		t.Fatal(err)
	}
	return concrete
}

func (m *machine) splicer() *splice.Splicer {
	return &splice.Splicer{
		Store: m.Store, Cache: m.Cache, Modules: m.Modules,
		Views: m.Views, ViewDirs: []string{viewRoot}, EnvRoots: []string{envRoot},
	}
}

// lockEnv creates an environment whose lockfile pins root's current hash.
func lockEnv(t *testing.T, m *machine, name string, root *spec.Spec) *env.Environment {
	t.Helper()
	e, err := env.Create(m.FS, envRoot, name, []string{root.Name})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := syntax.EncodeJSON(root)
	if err != nil {
		t.Fatal(err)
	}
	hash := root.FullHash()
	lock := &env.Lock{Version: env.LockVersion,
		Roots: []env.LockRoot{{Expr: root.Name, Hash: hash}},
		Specs: map[string]json.RawMessage{hash: raw}}
	data, err := json.MarshalIndent(lock, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.WriteFileAtomic(m.FS, e.LockPath(), append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSpliceFromArchive(t *testing.T) {
	m := newMachine(t, simfs.New(simfs.TempFS))
	root := m.install(t, "libdwarf ^libelf@0.8.12")
	if _, err := m.Cache.PushDAG(m.Store, root); err != nil {
		t.Fatal(err)
	}
	repl := m.install(t, "libelf@0.8.13")
	e := lockEnv(t, m, "dev", root)
	oldHash := root.FullHash()
	oldRec, _ := m.Store.Lookup(root)

	sp := m.splicer()
	// Dry run first: plan only, nothing installed.
	dry, err := sp.Run(root, "libelf", repl, true)
	if err != nil {
		t.Fatal(err)
	}
	p := dry.Plan
	if len(p.Cone) != 1 || p.Cone[0].Name != "libdwarf" || !p.Cone[0].FromArchive {
		t.Fatalf("plan cone = %+v, want one archived libdwarf change", p.Cone)
	}
	if len(p.Envs) != 1 || p.Envs[0] != e.LockPath() {
		t.Fatalf("plan envs = %v, want the dev lockfile", p.Envs)
	}
	if p.NewRootHash == p.OldRootHash {
		t.Fatal("splice did not change the root hash")
	}
	if _, ok := m.Store.Lookup(p.NewRoot); ok {
		t.Fatal("dry run installed the spliced root")
	}

	res, err := sp.Run(root, "libelf", repl, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Installed != 1 || res.FromArchive != 1 || res.Reused != 0 {
		t.Fatalf("result = {Installed:%d FromArchive:%d Reused:%d}, want one archive splice",
			res.Installed, res.FromArchive, res.Reused)
	}
	if res.Time == 0 {
		t.Error("splice charged no virtual time")
	}

	rec, ok := m.Store.Lookup(res.Plan.NewRoot)
	if !ok {
		t.Fatal("spliced root not installed")
	}
	if rec.Origin != store.OriginSpliced {
		t.Errorf("origin = %q, want %q", rec.Origin, store.OriginSpliced)
	}
	if rec.SplicedFrom != oldHash {
		t.Errorf("spliced-from = %q, want %q", rec.SplicedFrom, oldHash)
	}
	if len(rec.Lineage) != 1 || rec.Lineage[0] != oldHash {
		t.Errorf("lineage = %v, want [%s]", rec.Lineage, oldHash)
	}
	if rec.Explicit != oldRec.Explicit {
		t.Errorf("explicit = %v, want the old root's %v", rec.Explicit, oldRec.Explicit)
	}

	// The rewired binary references only the new DAG's prefixes.
	newElf, _ := m.Store.Lookup(res.Plan.NewRoot.Dep("libelf"))
	oldElfRec, _ := m.Store.Lookup(root.Dep("libelf"))
	bin, err := m.FS.ReadFile(rec.Prefix + "/bin/libdwarf")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(bin), oldRec.Prefix) || strings.Contains(string(bin), oldElfRec.Prefix) {
		t.Errorf("spliced binary still references old prefixes:\n%s", bin)
	}
	found := false
	for _, rp := range buildenv.BinaryRPATHs(bin) {
		if strings.HasPrefix(rp, newElf.Prefix) {
			found = true
		}
	}
	if !found {
		t.Errorf("no rpath points at the replacement %s:\n%s", newElf.Prefix, bin)
	}

	// Module file, env lockfile, and view links moved in the same commit.
	if exists, _ := m.FS.Stat(m.Modules.FileName(res.Plan.NewRoot)); !exists {
		t.Error("no module file for the spliced root")
	}
	lock, err := e.ReadLock()
	if err != nil {
		t.Fatal(err)
	}
	if lock.Roots[0].Hash != res.Plan.NewRootHash {
		t.Errorf("lock root hash = %s, want the spliced %s", lock.Roots[0].Hash, res.Plan.NewRootHash)
	}
	if _, ok := lock.Specs[oldHash]; ok {
		t.Error("lockfile still carries the old root spec")
	}
	if s, err := lock.Spec(res.Plan.NewRootHash); err != nil || s.FullHash() != res.Plan.NewRootHash {
		t.Errorf("lockfile spec for new hash broken: %v", err)
	}
	if target, err := m.FS.Readlink(viewRoot + "/libelf"); err != nil || target != newElf.Prefix {
		t.Errorf("view link = %q, %v; want the newer libelf %q", target, err, newElf.Prefix)
	}

	// The old install stays: a splice adds, GC reclaims later.
	if _, ok := m.Store.Lookup(root); !ok {
		t.Error("splice removed the original root")
	}

	// Idempotent re-splice reuses every cone node.
	res2, err := sp.Run(root, "libelf", repl, false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Installed != 0 || res2.Reused != 1 {
		t.Errorf("re-splice = {Installed:%d Reused:%d}, want pure reuse", res2.Installed, res2.Reused)
	}
}

func TestSpliceFromPrefixWithoutCache(t *testing.T) {
	m := newMachine(t, simfs.New(simfs.TempFS))
	root := m.install(t, "libdwarf ^libelf@0.8.12")
	repl := m.install(t, "libelf@0.8.13")

	sp := m.splicer()
	sp.Cache = nil // no archives anywhere: snapshot the live prefix
	res, err := sp.Run(root, "libelf", repl, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Installed != 1 || res.FromPrefix != 1 || res.FromArchive != 0 {
		t.Fatalf("result = {Installed:%d FromPrefix:%d FromArchive:%d}, want one prefix splice",
			res.Installed, res.FromPrefix, res.FromArchive)
	}
	rec, ok := m.Store.Lookup(res.Plan.NewRoot)
	if !ok {
		t.Fatal("spliced root not installed")
	}
	oldElfRec, _ := m.Store.Lookup(root.Dep("libelf"))
	bin, err := m.FS.ReadFile(rec.Prefix + "/bin/libdwarf")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(bin), oldElfRec.Prefix) {
		t.Errorf("snapshot splice left old libelf references:\n%s", bin)
	}
}

func TestSpliceProviderSwap(t *testing.T) {
	m := newMachine(t, simfs.New(simfs.TempFS))
	root := m.install(t, "mpileaks ^mpich")
	repl := m.install(t, "openmpi")
	oldMPI, _ := m.Store.Lookup(root.Dep("mpich"))

	res, err := m.splicer().Run(root, "mpich", repl, false)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plan
	if p.NewRoot.Dep("mpich") != nil {
		t.Error("mpich still in the spliced DAG")
	}
	om := p.NewRoot.Dep("openmpi")
	if om == nil {
		t.Fatal("openmpi not grafted into the spliced DAG")
	}
	rec, ok := m.Store.Lookup(p.NewRoot)
	if !ok {
		t.Fatal("spliced root not installed")
	}
	bin, err := m.FS.ReadFile(rec.Prefix + "/bin/mpileaks")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(bin), oldMPI.Prefix) {
		t.Errorf("spliced binary still references mpich prefix %s:\n%s", oldMPI.Prefix, bin)
	}
	omRec, _ := m.Store.Lookup(om)
	if !strings.Contains(string(bin), omRec.Prefix) {
		t.Errorf("spliced binary does not reference openmpi prefix %s:\n%s", omRec.Prefix, bin)
	}
	// Every cone record carries splice provenance.
	for _, ch := range p.Cone {
		n := p.NewRoot
		if n.Name != ch.Name {
			n = p.NewRoot.Dep(ch.Name)
		}
		r, ok := m.Store.Lookup(n)
		if !ok {
			t.Fatalf("cone node %s not installed", ch.Name)
		}
		if r.Origin != store.OriginSpliced || r.SplicedFrom != ch.OldHash {
			t.Errorf("%s: origin=%q spliced-from=%q, want spliced from %s",
				ch.Name, r.Origin, r.SplicedFrom, ch.OldHash)
		}
	}
}

func TestSpliceLineageChains(t *testing.T) {
	m := newMachine(t, simfs.New(simfs.TempFS))
	root := m.install(t, "libdwarf ^libelf@0.8.12")
	repl1 := m.install(t, "libelf@0.8.13")
	repl2 := m.install(t, "libelf@0.8.10")
	h0 := root.FullHash()

	sp := m.splicer()
	res1, err := sp.Run(root, "libelf", repl1, false)
	if err != nil {
		t.Fatal(err)
	}
	h1 := res1.Plan.NewRootHash
	res2, err := sp.Run(res1.Plan.NewRoot, "libelf", repl2, false)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := m.Store.Lookup(res2.Plan.NewRoot)
	if !ok {
		t.Fatal("twice-spliced root not installed")
	}
	if rec.SplicedFrom != h1 {
		t.Errorf("spliced-from = %s, want the intermediate %s", rec.SplicedFrom, h1)
	}
	want := []string{h0, h1}
	if fmt.Sprint(rec.Lineage) != fmt.Sprint(want) {
		t.Errorf("lineage = %v, want %v", rec.Lineage, want)
	}
}

func TestSpliceErrors(t *testing.T) {
	m := newMachine(t, simfs.New(simfs.TempFS))
	root := m.install(t, "libdwarf ^libelf@0.8.12")
	sp := m.splicer()

	// Replacement not installed: a splice relocates, it never builds.
	notBuilt, err := m.Conc.Concretize(syntax.MustParse("libelf@0.8.13"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Run(root, "libelf", notBuilt, false); err == nil ||
		!strings.Contains(err.Error(), "not installed") {
		t.Errorf("uninstalled replacement: err = %v, want a not-installed complaint", err)
	}

	// Root not installed.
	ghost, err := m.Conc.Concretize(syntax.MustParse("libdwarf ^libelf@0.8.13"))
	if err != nil {
		t.Fatal(err)
	}
	repl := m.install(t, "libelf@0.8.13")
	if _, err := sp.Run(ghost, "libelf", repl, false); err == nil ||
		!strings.Contains(err.Error(), "not installed") {
		t.Errorf("uninstalled root: err = %v, want a not-installed complaint", err)
	}

	// Target absent from the DAG.
	if _, err := sp.Run(root, "zlib", repl, false); err == nil {
		t.Error("splicing an absent dependency succeeded")
	}
}
