// Package splice rewires installed binaries onto a replacement
// dependency without rebuilding them — the operational payoff of the
// relocation machinery §3.5's rpath isolation bought. Replacing one
// dependency of an installed DAG invalidates the full hash of every
// node on a path to it (the splice cone); instead of recompiling that
// cone, the splicer re-materializes each cone prefix from its cached
// archive (or, failing that, from the installed prefix itself) with
// every store path rewritten to the new DAG's prefixes, and installs
// the result under the new hash with OriginSpliced provenance.
//
// The whole cone lands in ONE journaled transaction: new prefixes, new
// index records, regenerated module files, refreshed view links, and
// rewritten environment lockfiles commit together or not at all — a
// crash at any point leaves the site exactly pre- or post-splice after
// recovery. The original install is left in place (its record gains
// nothing and loses nothing); a later GC reclaims it once nothing
// anchors it.
package splice

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/buildcache"
	"repro/internal/env"
	"repro/internal/modules"
	"repro/internal/relocate"
	"repro/internal/simfs"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/syntax"
	"repro/internal/txn"
	"repro/internal/views"
)

// Splicer wires the layers a splice touches. Store is required; every
// other seam is optional and skipped when nil (mirroring lifecycle.GC).
type Splicer struct {
	Store *store.Store
	// Cache provides archived payloads to re-materialize from; without
	// one (or on a per-node cache miss) the splicer snapshots the
	// installed prefix instead.
	Cache *buildcache.Cache
	// Modules regenerates module files for the spliced records; Views
	// refreshes view links over ViewDirs.
	Modules  *modules.Generator
	Views    *views.Manager
	ViewDirs []string
	// EnvRoots are environment collection directories whose lockfiles
	// are retargeted when they pin the spliced root's old hash.
	EnvRoots []string
}

// NodeChange is one cone node's rewiring: the installed configuration it
// replaces and where the new prefix lands.
type NodeChange struct {
	Name      string
	OldHash   string
	NewHash   string
	OldPrefix string
	NewPrefix string
	// FromArchive reports whether the cache holds the old configuration's
	// archive — the preferred payload source (it carries a verified
	// relocation table; a live-prefix snapshot does not).
	FromArchive bool
}

// Plan is the dry-run answer: the rewired DAG and exactly what executing
// the splice would touch.
type Plan struct {
	Target string
	// Replacement renders the replacement spec; ReplacementName is its
	// package name (the node the cut edges now point at — it may differ
	// from Target when swapping providers).
	Replacement     string
	ReplacementName string
	OldRoot         *spec.Spec
	NewRoot         *spec.Spec
	OldRootHash     string
	NewRootHash     string
	// Cone lists the affected nodes bottom-up (dependencies first) — the
	// order Run materializes them in.
	Cone []NodeChange
	// Envs are the lockfile paths pinning the old root hash, retargeted
	// in the same transaction.
	Envs []string
}

// Result reports an executed splice.
type Result struct {
	Plan *Plan
	// Installed counts cone prefixes materialized; Reused counts nodes
	// whose new hash was already installed (an idempotent re-splice).
	Installed int
	Reused    int
	// FromArchive/FromPrefix split Installed by payload source.
	FromArchive int
	FromPrefix  int
	ModuleFiles int
	Envs        int
	// Time is the virtual cost of the relocation work — what the splice
	// paid instead of a rebuild.
	Time time.Duration
	// Warnings carries non-blocking trust complaints from archive
	// fetches and notes about per-node archive fallbacks.
	Warnings []string
}

// Plan computes the rewired DAG and the work a splice would do, without
// touching anything. The root must be installed; the replacement's whole
// closure must already be installed too — a splice relocates, it never
// builds.
func (sp *Splicer) Plan(root *spec.Spec, target string, repl *spec.Spec) (*Plan, error) {
	fail := func(format string, args ...any) (*Plan, error) {
		return nil, fmt.Errorf("splice %s: %s", root.String(), fmt.Sprintf(format, args...))
	}
	rec, ok := sp.Store.Lookup(root)
	if !ok {
		return fail("root is not installed")
	}
	for _, n := range repl.TopoOrder() {
		if n.External {
			continue
		}
		if _, ok := sp.Store.Lookup(n); !ok {
			return fail("replacement dependency %s is not installed (a splice relocates; it never builds)", n.String())
		}
	}

	newRoot, err := spec.SpliceDep(rec.Spec, target, repl)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Target:          target,
		Replacement:     repl.String(),
		ReplacementName: repl.Name,
		OldRoot:         rec.Spec,
		NewRoot:         newRoot,
		OldRootHash:     rec.Spec.FullHash(),
		NewRootHash:     newRoot.FullHash(),
	}

	oldByName := nodesByName(rec.Spec)
	newByName := nodesByName(newRoot)
	for _, name := range spec.SpliceCone(rec.Spec, target) {
		oldNode, newNode := oldByName[name], newByName[name]
		oldRec, ok := sp.Store.Lookup(oldNode)
		if !ok {
			return fail("cone node %s is not installed", oldNode.String())
		}
		oldHash := oldNode.FullHash()
		p.Cone = append(p.Cone, NodeChange{
			Name:        name,
			OldHash:     oldHash,
			NewHash:     newNode.FullHash(),
			OldPrefix:   oldRec.Prefix,
			NewPrefix:   sp.Store.Prefix(newNode),
			FromArchive: sp.Cache != nil && sp.Cache.Has(oldHash),
		})
	}

	for _, envRoot := range sp.EnvRoots {
		for _, name := range env.List(sp.Store.FS, envRoot) {
			e, err := env.Open(sp.Store.FS, envRoot, name)
			if err != nil {
				continue
			}
			lock, err := e.ReadLock()
			if err != nil {
				continue
			}
			for _, lr := range lock.Roots {
				if lr.Hash == p.OldRootHash {
					p.Envs = append(p.Envs, e.LockPath())
					break
				}
			}
		}
	}
	return p, nil
}

func nodesByName(root *spec.Spec) map[string]*spec.Spec {
	out := make(map[string]*spec.Spec)
	for _, n := range root.Nodes() {
		out[n.Name] = n
	}
	return out
}

// Run executes a splice: compute the plan, then materialize the whole
// cone — bottom-up, so each node's dependencies exist when its rpaths
// are checked — inside one journaled transaction together with module
// files, view links, and environment lockfile rewrites. With dryRun the
// plan is returned untouched.
//
// A txn.CommitError means the commit point was reached: the splice is
// durable and crash recovery rolls it forward, so callers should treat
// it as "spliced, pending replay".
func (sp *Splicer) Run(root *spec.Spec, target string, repl *spec.Spec, dryRun bool) (*Result, error) {
	p, err := sp.Plan(root, target, repl)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: p}
	if dryRun {
		return res, nil
	}

	st := sp.Store
	// Local rewrite table: every old-DAG prefix maps to its same-name
	// node's prefix in the new DAG, plus the replaced dependency's prefix
	// mapping onto the replacement's (the names may differ — swapping MPI
	// providers). Used when a cone node is materialized from its live
	// prefix; archive materialization builds its own table from the
	// archive's recorded source paths.
	localPairs, err := sp.localPairs(p)
	if err != nil {
		return nil, err
	}

	meter := simfs.NewMeter()
	prefixFS := st.FS.WithMeter(meter)
	t := txn.Begin(st.FS, st.JournalDir())
	abort := func(err error) (*Result, error) {
		_ = t.Rollback()
		return nil, err
	}

	newByName := nodesByName(p.NewRoot)
	oldByName := nodesByName(p.OldRoot)
	for _, ch := range p.Cone {
		ch := ch
		newNode := newByName[ch.Name]
		oldRec, ok := st.Lookup(oldByName[ch.Name])
		if !ok {
			return abort(fmt.Errorf("splice: cone node %s vanished mid-splice", ch.Name))
		}
		meta := txn.RecordMeta{
			Explicit:    oldRec.Explicit,
			Origin:      store.OriginSpliced,
			SplicedFrom: ch.OldHash,
			Lineage:     append(append([]string{}, oldRec.Lineage...), ch.OldHash),
		}
		fromArchive := false
		rec, ran, err := st.InstallMetaTxn(t, newNode, meta, func(prefix string) error {
			files, opts, usedArchive, warn := sp.payload(&ch, newByName, localPairs)
			if warn != "" {
				res.Warnings = append(res.Warnings, warn)
			}
			fromArchive = usedArchive
			opts.Meter = meter
			if _, err := relocate.Materialize(prefixFS, prefix, files, opts); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return abort(err)
		}
		if ran {
			res.Installed++
			if fromArchive {
				res.FromArchive++
			} else {
				res.FromPrefix++
			}
		} else {
			res.Reused++
		}
		if sp.Modules != nil {
			sp.Modules.StageGenerate(t, newNode, rec.Prefix)
			res.ModuleFiles++
		}
	}

	if err := sp.stageEnvRewrites(t, p, res); err != nil {
		return abort(err)
	}
	if sp.Views != nil {
		// The new records entered the in-memory index above, so the
		// recomputed desired link set already points at the spliced
		// prefixes.
		if _, err := sp.Views.StageRefresh(t, st, sp.ViewDirs...); err != nil {
			return abort(err)
		}
	}

	if err := t.Commit(st.Applier()); err != nil {
		var ce *txn.CommitError
		if !errors.As(err, &ce) {
			_ = t.Rollback()
		}
		return nil, err
	}
	res.Time = meter.Cost()
	return res, nil
}

// payload picks a cone node's file set and relocation options: the
// cached archive when one exists and verifies (its recorded relocation
// table re-checks every rewrite), else a snapshot of the installed
// prefix relocated through the local pair table. Never fails — the
// prefix snapshot is the universal fallback and Materialize verifies
// whatever table is chosen.
func (sp *Splicer) payload(ch *NodeChange, newByName map[string]*spec.Spec, localPairs map[string]string) ([]relocate.File, relocate.Options, bool, string) {
	if ch.FromArchive {
		ar, warn, err := sp.Cache.Fetch(ch.OldHash)
		if err == nil {
			pairs := map[string]string{
				ar.Prefix:    ch.NewPrefix,
				ar.StoreRoot: sp.Store.Root,
			}
			ok := true
			for depName, srcPrefix := range ar.DepPrefixes {
				dst, found := sp.depPrefix(depName, newByName)
				if !found {
					ok = false
					break
				}
				pairs[srcPrefix] = dst
			}
			if ok {
				forbid := ""
				if ar.StoreRoot != sp.Store.Root {
					forbid = ar.StoreRoot
				}
				return ar.RelocFiles(), relocate.Options{
					Table:      relocate.NewTable(pairs),
					Want:       ar.WantCounts(),
					ForbidRoot: forbid,
				}, true, warn
			}
			err = fmt.Errorf("archive names a dependency absent from the spliced DAG")
		}
		warn = fmt.Sprintf("splice %s: archive unusable, re-materializing from installed prefix: %v", ch.Name, err)
		files, opts, snapErr := sp.snapshotPayload(ch, localPairs)
		if snapErr != nil {
			// Surface the snapshot failure through Materialize: an empty
			// file set with an impossible Want entry fails verification.
			return nil, relocate.Options{Want: map[string]map[string]int{"": {ch.OldPrefix: 1}}}, false, warn
		}
		return files, opts, false, warn
	}
	files, opts, err := sp.snapshotPayload(ch, localPairs)
	if err != nil {
		return nil, relocate.Options{Want: map[string]map[string]int{"": {ch.OldPrefix: 1}}}, false,
			fmt.Sprintf("splice %s: snapshot failed: %v", ch.Name, err)
	}
	return files, opts, false, ""
}

func (sp *Splicer) snapshotPayload(ch *NodeChange, localPairs map[string]string) ([]relocate.File, relocate.Options, error) {
	files, err := relocate.Snapshot(sp.Store.FS, ch.OldPrefix)
	if err != nil {
		return nil, relocate.Options{}, err
	}
	return files, relocate.Options{Table: relocate.NewTable(localPairs)}, nil
}

// depPrefix resolves an old-DAG dependency name to its prefix in the
// spliced world: same-name nodes keep or change their prefix with their
// hash; the replaced target resolves through whatever node absorbed its
// edges (the replacement may carry a different name).
func (sp *Splicer) depPrefix(depName string, newByName map[string]*spec.Spec) (string, bool) {
	n, ok := newByName[depName]
	if !ok {
		return "", false
	}
	if n.External {
		return n.Path, true
	}
	if rec, ok := sp.Store.Lookup(n); ok {
		return rec.Prefix, true
	}
	return sp.Store.Prefix(n), true
}

// localPairs builds the live-prefix rewrite table for a plan: every node
// of the old DAG whose same-name counterpart moved maps old prefix →
// new prefix, and the replaced dependency maps onto the replacement.
func (sp *Splicer) localPairs(p *Plan) (map[string]string, error) {
	pairs := make(map[string]string)
	newByName := nodesByName(p.NewRoot)
	for _, oldNode := range p.OldRoot.Nodes() {
		if oldNode.External {
			continue
		}
		name := oldNode.Name
		if name == p.Target {
			// The replacement absorbed this node's edges.
			name = p.ReplacementName
		}
		dst, ok := sp.depPrefix(name, newByName)
		if !ok {
			continue
		}
		oldRec, ok := sp.Store.Lookup(oldNode)
		if !ok || oldRec.Prefix == dst {
			continue
		}
		pairs[oldRec.Prefix] = dst
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("splice: nothing to rewrite (replacement resolves to the installed dependency)")
	}
	return pairs, nil
}

// stageEnvRewrites retargets every lockfile pinning the old root hash:
// the root entry moves to the new hash and the Specs table swaps the old
// DAG for the spliced one (keeping the old entry when another lock root
// still references it).
func (sp *Splicer) stageEnvRewrites(t *txn.Txn, p *Plan, res *Result) error {
	if len(p.Envs) == 0 {
		return nil
	}
	specJSON, err := encodeSpec(p.NewRoot)
	if err != nil {
		return err
	}
	inPlan := make(map[string]bool, len(p.Envs))
	for _, path := range p.Envs {
		inPlan[path] = true
	}
	for _, envRoot := range sp.EnvRoots {
		for _, name := range env.List(sp.Store.FS, envRoot) {
			e, err := env.Open(sp.Store.FS, envRoot, name)
			if err != nil || !inPlan[e.LockPath()] {
				continue
			}
			lock, err := e.ReadLock()
			if err != nil {
				continue
			}
			// Every root pinned to the old hash moves; once none is left
			// the old Specs entry is dead weight.
			for i := range lock.Roots {
				if lock.Roots[i].Hash == p.OldRootHash {
					lock.Roots[i].Hash = p.NewRootHash
				}
			}
			delete(lock.Specs, p.OldRootHash)
			lock.Specs[p.NewRootHash] = specJSON
			data, err := json.MarshalIndent(lock, "", "  ")
			if err != nil {
				return err
			}
			t.StageWriteFile(e.LockPath(), append(data, '\n'))
			res.Envs++
		}
	}
	return nil
}

func encodeSpec(s *spec.Spec) (json.RawMessage, error) {
	data, err := syntax.EncodeJSON(s)
	if err != nil {
		return nil, err
	}
	return json.RawMessage(data), nil
}
