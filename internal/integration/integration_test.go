// Package integration exercises whole-system workflows across module
// boundaries: the paper's end-to-end story (concretize → fetch → build →
// store → modules → views → extensions), database persistence across
// "processes", the gperftools combinatorial-naming use case (§4.1), and
// property-based checks over randomly generated spec expressions.
package integration

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/modules"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/syntax"
)

// TestFullLifecycle walks one package through its whole life: install,
// query, module, persistence, reopen, uninstall.
func TestFullLifecycle(t *testing.T) {
	s := core.MustNew()
	res, err := s.Install("libdwarf")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %d", len(res.Reports))
	}

	// Persist, then simulate a new process: a fresh store handle on the
	// same filesystem.
	if err := s.Store.Save(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(s.FS, "/spack/opt", store.SpackLayout{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 2 {
		t.Fatalf("reopened store has %d records", st2.Len())
	}
	recs := st2.Find(syntax.MustParse("libdwarf"))
	if len(recs) != 1 {
		t.Fatalf("find after reopen = %d", len(recs))
	}
	// Provenance readable and reconcretizable.
	provStr, err := st2.ReadProvenance(recs[0].Prefix)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := syntax.Parse(provStr)
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.Name != "libdwarf" {
		t.Errorf("provenance = %q", provStr)
	}

	// Dependent protection works through the reopened handle.
	libelf := recs[0].Spec.Dep("libelf")
	if err := st2.Uninstall(libelf, false); err == nil {
		t.Error("dependent check lost across persistence")
	}
}

// TestGperftoolsCombinatorialNaming reproduces §4.1: central installs of
// gperftools across compilers and compiler versions coexist, each in its
// own prefix, from one package file.
func TestGperftoolsCombinatorialNaming(t *testing.T) {
	s := core.MustNew()
	configs := []string{
		"gperftools@2.4 %gcc@4.7.3",
		"gperftools@2.4 %gcc@4.9.2",
		"gperftools@2.4 %intel@14.0.1",
		"gperftools@2.4 %intel@15.0.2",
		"gperftools@2.3 %gcc@4.9.2",
		"gperftools@2.4 %clang",
	}
	prefixes := make(map[string]bool)
	for _, cfg := range configs {
		res, err := s.Install(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		prefixes[res.Report("gperftools").Prefix] = true
	}
	if len(prefixes) != len(configs) {
		t.Errorf("%d unique prefixes for %d configs", len(prefixes), len(configs))
	}
	recs, _ := s.Find("gperftools")
	if len(recs) != len(configs) {
		t.Errorf("find = %d", len(recs))
	}
	// Compiler-constrained queries slice the set.
	gccOnly, _ := s.Find("gperftools%gcc")
	if len(gccOnly) != 3 {
		t.Errorf("gcc builds = %d, want 3", len(gccOnly))
	}
}

// TestModulesViewsExtensionsTogether drives every post-install subsystem
// against one store.
func TestModulesViewsExtensionsTogether(t *testing.T) {
	s := core.MustNew()
	s.Config.Site.AddLinkRule("py-numpy", "/opt/numpy-default")
	if _, err := s.Install("py-numpy"); err != nil {
		t.Fatal(err)
	}
	// View link exists.
	if _, err := s.FS.Readlink("/opt/numpy-default"); err != nil {
		t.Errorf("view link missing: %v", err)
	}
	// Dotkit modules for every non-external node.
	files, err := s.FS.List("/spack/share/dotkit")
	if err != nil || len(files) == 0 {
		t.Errorf("dotkit files: %v, %v", files, err)
	}
	// Lmod hierarchy generates cleanly on the same store.
	g := &modules.LmodGenerator{FS: s.FS, Root: "/spack/share", IsMPI: s.IsMPI}
	luas, err := g.GenerateAll(s.Store)
	if err != nil || len(luas) != len(files) {
		t.Errorf("lmod files = %d vs dotkit %d (%v)", len(luas), len(files), err)
	}
	// Extension activation against the installed python.
	if err := s.Activate("py-numpy"); err != nil {
		t.Fatal(err)
	}
	if err := s.Deactivate("py-numpy"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInstallsSharedStore: many goroutines installing
// overlapping DAGs into one store, exercising the double-check path in
// Store.Install and the parallel executor together.
func TestConcurrentInstallsSharedStore(t *testing.T) {
	s := core.MustNew(core.WithJobs(4))
	exprs := []string{
		"mpileaks ^mpich", "libdwarf", "dyninst", "callpath ^mpich",
		"mpileaks ^openmpi", "libelf", "boost", "hwloc",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(exprs))
	for _, expr := range exprs {
		wg.Add(1)
		go func(expr string) {
			defer wg.Done()
			if _, err := s.Install(expr); err != nil {
				errs <- fmt.Errorf("%s: %w", expr, err)
			}
		}(expr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Exactly one libelf configuration should exist despite 8 racing DAGs.
	recs, _ := s.Find("libelf")
	if len(recs) != 1 {
		t.Errorf("libelf configurations = %d", len(recs))
	}
}

// randomExpr builds random valid spec expressions over the builtin repo.
func randomExpr(r *rand.Rand) string {
	roots := []string{"mpileaks", "callpath", "dyninst", "libdwarf", "hdf5", "silo",
		"py-numpy", "gerris", "hypre", "samrai", "gperftools"}
	var b strings.Builder
	b.WriteString(roots[r.Intn(len(roots))])
	if r.Intn(3) == 0 {
		b.WriteString([]string{"%gcc", "%gcc@4.7.3", "%intel", "%clang"}[r.Intn(4)])
	}
	if r.Intn(4) == 0 {
		b.WriteString(" ^" + []string{"mpich", "mvapich2", "openmpi"}[r.Intn(3)])
	}
	if r.Intn(4) == 0 {
		b.WriteString(" ^libelf@" + []string{"0.8.12", "0.8.13", "0.8.10"}[r.Intn(3)])
	}
	return b.String()
}

// TestPropertyConcretizationSound: for random abstract specs, the result
// is concrete, satisfies the input, has one node per name, and
// re-concretizing is deterministic.
func TestPropertyConcretizationSound(t *testing.T) {
	s := core.MustNew()
	r := rand.New(rand.NewSource(20150715))
	for i := 0; i < 200; i++ {
		expr := randomExpr(r)
		in, err := syntax.Parse(expr)
		if err != nil {
			t.Fatalf("generator produced bad expr %q: %v", expr, err)
		}
		out, err := s.Concretizer.Concretize(in)
		if err != nil {
			// Some random combinations legitimately conflict (e.g. a
			// libelf pin incompatible with nothing here) — they must fail
			// loudly, not panic; any error is acceptable, silent wrongness
			// is not.
			continue
		}
		if !out.Concrete() {
			t.Errorf("%q: result not concrete", expr)
		}
		if !out.Satisfies(in) {
			t.Errorf("%q: result does not satisfy input", expr)
		}
		names := make(map[string]int)
		seen := make(map[*spec.Spec]bool)
		var walk func(*spec.Spec)
		walk = func(n *spec.Spec) {
			if seen[n] {
				return
			}
			seen[n] = true
			names[n.Name]++
			for _, d := range n.Deps {
				walk(d)
			}
		}
		walk(out)
		for name, count := range names {
			if count != 1 {
				t.Errorf("%q: package %s appears %d times", expr, name, count)
			}
		}
		again, err := s.Concretizer.Concretize(in)
		if err != nil || again.FullHash() != out.FullHash() {
			t.Errorf("%q: nondeterministic (%v)", expr, err)
		}
	}
}

// TestPropertyInstallAfterConcretize: whatever concretizes also builds.
func TestPropertyInstallAfterConcretize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := core.MustNew()
	r := rand.New(rand.NewSource(42))
	built := 0
	for i := 0; i < 25 && built < 12; i++ {
		expr := randomExpr(r)
		if _, err := s.Concretizer.Concretize(syntax.MustParse(expr)); err != nil {
			continue
		}
		if _, err := s.Install(expr); err != nil {
			t.Errorf("install %q failed after successful concretize: %v", expr, err)
		}
		built++
	}
	if built == 0 {
		t.Fatal("generator produced nothing buildable")
	}
}
