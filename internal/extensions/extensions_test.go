package extensions

import (
	"strings"
	"testing"

	"repro/internal/simfs"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/syntax"
	"repro/internal/version"
)

// fakeRecord builds a store.Record with files on the filesystem.
func fakeRecord(t *testing.T, fs *simfs.FS, name, prefix string, files map[string]string) *store.Record {
	t.Helper()
	s := syntax.MustParse(name)
	s.Versions = version.ExactList(version.Parse("1.0"))
	s.Compiler = spec.Compiler{Name: "gcc", Versions: version.ExactList(version.Parse("4.9.2"))}
	s.Arch = "linux-x86_64"
	if err := fs.MkdirAll(prefix); err != nil {
		t.Fatal(err)
	}
	for rel, content := range files {
		dir := prefix + rel[:strings.LastIndexByte(rel, '/')]
		if err := fs.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(prefix+rel, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	return &store.Record{Spec: s, Prefix: prefix}
}

func pythonEnv(t *testing.T) (*simfs.FS, *Manager, *store.Record, *store.Record, *store.Record) {
	fs := simfs.New(simfs.TempFS)
	python := fakeRecord(t, fs, "python", "/opt/python", map[string]string{
		"/bin/python":               "interpreter",
		"/lib/python2.7/os.py":      "stdlib",
		"/lib/python2.7/site.index": "x",
	})
	numpy := fakeRecord(t, fs, "py-numpy", "/opt/py-numpy", map[string]string{
		"/lib/python2.7/site-packages/numpy/__init__.py": "numpy code",
		"/lib/python2.7/site-packages/easy-install.pth":  "./numpy\n",
		"/bin/f2py": "f2py tool",
	})
	scipy := fakeRecord(t, fs, "py-scipy", "/opt/py-scipy", map[string]string{
		"/lib/python2.7/site-packages/scipy/__init__.py": "scipy code",
		"/lib/python2.7/site-packages/easy-install.pth":  "./scipy\n",
	})
	m := NewManager(fs)
	m.Merge = PythonMerge
	return fs, m, python, numpy, scipy
}

func TestActivateLinksFiles(t *testing.T) {
	fs, m, python, numpy, _ := pythonEnv(t)
	if err := m.Activate(numpy, python); err != nil {
		t.Fatal(err)
	}
	// §4.2: files appear inside the interpreter prefix as symlinks.
	link := "/opt/python/lib/python2.7/site-packages/numpy/__init__.py"
	if !fs.IsSymlink(link) {
		t.Fatalf("%s is not a symlink", link)
	}
	data, err := fs.ReadFile(link)
	if err != nil || string(data) != "numpy code" {
		t.Errorf("read through activation link = %q, %v", data, err)
	}
	if !fs.IsSymlink("/opt/python/bin/f2py") {
		t.Error("bin tool not linked")
	}
	// State recorded.
	active, err := m.Active(python.Prefix)
	if err != nil || len(active) != 1 || active[0] != "py-numpy" {
		t.Errorf("Active = %v, %v", active, err)
	}
	if !m.IsActive(python.Prefix, "py-numpy") {
		t.Error("IsActive wrong")
	}
}

func TestDoubleActivateFails(t *testing.T) {
	_, m, python, numpy, _ := pythonEnv(t)
	if err := m.Activate(numpy, python); err != nil {
		t.Fatal(err)
	}
	if err := m.Activate(numpy, python); err == nil {
		t.Error("re-activation should fail")
	}
}

func TestDeactivateRestoresPristine(t *testing.T) {
	fs, m, python, numpy, _ := pythonEnv(t)
	// Snapshot: file count before activation.
	before := fs.FileCount()
	if err := m.Activate(numpy, python); err != nil {
		t.Fatal(err)
	}
	if err := m.Deactivate(numpy, python); err != nil {
		t.Fatal(err)
	}
	// All links gone; original stdlib intact.
	if ex, _ := fs.Stat("/opt/python/lib/python2.7/site-packages/numpy/__init__.py"); ex {
		t.Error("activation link survived deactivate")
	}
	if data, _ := fs.ReadFile("/opt/python/lib/python2.7/os.py"); string(data) != "stdlib" {
		t.Error("stdlib damaged")
	}
	// Only the state file is allowed to remain.
	after := fs.FileCount()
	if after != before+1 {
		t.Errorf("file count %d -> %d (want +1 for state file)", before, after)
	}
	if m.IsActive(python.Prefix, "py-numpy") {
		t.Error("still active after deactivate")
	}
}

func TestDeactivateInactiveFails(t *testing.T) {
	_, m, python, numpy, _ := pythonEnv(t)
	if err := m.Deactivate(numpy, python); err == nil {
		t.Error("deactivating inactive extension should fail")
	}
}

// TestMergeConflictingFiles reproduces §4.2's Python specialization: two
// extensions both ship easy-install.pth; activation merges them.
func TestMergeConflictingFiles(t *testing.T) {
	fs, m, python, numpy, scipy := pythonEnv(t)
	if err := m.Activate(numpy, python); err != nil {
		t.Fatal(err)
	}
	if err := m.Activate(scipy, python); err != nil {
		t.Fatal(err)
	}
	pth := "/opt/python/lib/python2.7/site-packages/easy-install.pth"
	data, err := fs.ReadFile(pth)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "./numpy") || !strings.Contains(string(data), "./scipy") {
		t.Errorf("merged pth = %q", data)
	}
	// The merged file is a regular file now, not a link.
	if fs.IsSymlink(pth) {
		t.Error("merged file should be regular")
	}

	// Deactivating scipy restores numpy's version.
	if err := m.Deactivate(scipy, python); err != nil {
		t.Fatal(err)
	}
	data, _ = fs.ReadFile(pth)
	if strings.Contains(string(data), "./scipy") || !strings.Contains(string(data), "./numpy") {
		t.Errorf("post-deactivate pth = %q", data)
	}
}

// TestConflictWithoutMergeRollsBack: without a merge policy, a conflict
// aborts and removes any links already created.
func TestConflictWithoutMergeRollsBack(t *testing.T) {
	fs, m, python, numpy, scipy := pythonEnv(t)
	m.Merge = nil
	if err := m.Activate(numpy, python); err != nil {
		t.Fatal("first activation has no conflicts (fresh site-packages):", err)
	}
	err := m.Activate(scipy, python)
	if err == nil {
		t.Fatal("conflicting activation without merge policy should fail")
	}
	// scipy's non-conflicting file must have been rolled back.
	if ex, _ := fs.Stat("/opt/python/lib/python2.7/site-packages/scipy/__init__.py"); ex {
		t.Error("rollback left scipy links behind")
	}
	if m.IsActive(python.Prefix, "py-scipy") {
		t.Error("failed activation recorded as active")
	}
}

// TestUnmergeableConflictRefused: PythonMerge only merges known metadata
// files.
func TestUnmergeableConflictRefused(t *testing.T) {
	fs, m, python, _, _ := pythonEnv(t)
	evil := fakeRecord(t, fs, "py-evil", "/opt/py-evil", map[string]string{
		"/lib/python2.7/os.py": "overwrite the stdlib!",
	})
	if err := m.Activate(evil, python); err == nil {
		t.Error("overwriting a real file must be refused")
	}
	if data, _ := fs.ReadFile("/opt/python/lib/python2.7/os.py"); string(data) != "stdlib" {
		t.Error("stdlib overwritten")
	}
}

func TestPythonMergePolicy(t *testing.T) {
	merged, err := PythonMerge("/sp/easy-install.pth", []byte("a\n"), []byte("b\n"))
	if err != nil || string(merged) != "a\nb\n" {
		t.Errorf("merge = %q, %v", merged, err)
	}
	// Newline added when missing.
	merged, _ = PythonMerge("/sp/easy-install.pth", []byte("a"), []byte("b\n"))
	if string(merged) != "a\nb\n" {
		t.Errorf("merge without trailing NL = %q", merged)
	}
	if _, err := PythonMerge("/sp/code.py", []byte("x"), []byte("y")); err == nil {
		t.Error("arbitrary files must not merge")
	}
}

func TestActiveEmpty(t *testing.T) {
	fs := simfs.New(simfs.TempFS)
	m := NewManager(fs)
	active, err := m.Active("/nonexistent")
	if err != nil || len(active) != 0 {
		t.Errorf("Active on fresh prefix = %v, %v", active, err)
	}
}

func TestCorruptStateFile(t *testing.T) {
	fs, m, python, numpy, _ := pythonEnv(t)
	fs.MkdirAll(python.Prefix + "/.spack")
	fs.WriteFile(python.Prefix+"/.spack/extensions.json", []byte("{corrupt"))
	if err := m.Activate(numpy, python); err == nil {
		t.Error("corrupt state should surface an error")
	}
	if _, err := m.Active(python.Prefix); err == nil {
		t.Error("Active should report corrupt state")
	}
}

func TestActivateIOFailureRollsBack(t *testing.T) {
	fs, m, python, numpy, _ := pythonEnv(t)
	// Fail symlink creation partway through the activation.
	m.FS = fs.FailAfter("symlink", 1)
	if err := m.Activate(numpy, python); err == nil {
		t.Fatal("injected symlink failure should abort")
	}
	// Nothing was left behind (state file is never written on failure).
	links := 0
	fs.Walk(python.Prefix, func(p string, isLink bool) error {
		if isLink {
			links++
		}
		return nil
	})
	if links != 0 {
		t.Errorf("%d links left after failed activation", links)
	}
	if m.IsActive(python.Prefix, "py-numpy") {
		t.Error("failed activation recorded")
	}
}

func TestDeactivateMissingLink(t *testing.T) {
	fs, m, python, numpy, _ := pythonEnv(t)
	if err := m.Activate(numpy, python); err != nil {
		t.Fatal(err)
	}
	// A user removed one of the links manually: deactivate reports it.
	fs.Remove(python.Prefix + "/bin/f2py")
	if err := m.Deactivate(numpy, python); err == nil {
		t.Error("deactivate with missing link should error")
	}
}
