// Package extensions implements Spack's extension mechanism for
// interpreted languages (SC'15 §4.2): packages like py-numpy install into
// their own prefixes — enabling combinatorial versioning — and can then be
// "activated" into a Python installation by symbolically linking each file
// of the extension prefix into the interpreter prefix, as if installed
// directly. Activation fails on file conflicts unless the extendee
// supplies a merge hook (Python's conflicting metadata files are merged);
// deactivation removes the links and restores the pristine installation.
package extensions

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/simfs"
	"repro/internal/store"
)

// MergeFunc decides how to handle a file that exists in both the extendee
// prefix and an extension being activated. It receives the relative path
// and both contents and returns the merged content, or an error to refuse.
type MergeFunc func(relPath string, existing, incoming []byte) ([]byte, error)

// PythonMerge is the merge policy §4.2 describes for Python: package
// managers' metadata files that every extension writes (site indexes,
// easy-install.pth) are concatenated; other conflicts are refused.
func PythonMerge(relPath string, existing, incoming []byte) ([]byte, error) {
	base := relPath[strings.LastIndexByte(relPath, '/')+1:]
	switch base {
	case "easy-install.pth", "site-index", "INSTALLER":
		merged := append([]byte{}, existing...)
		if len(merged) > 0 && merged[len(merged)-1] != '\n' {
			merged = append(merged, '\n')
		}
		return append(merged, incoming...), nil
	}
	return nil, fmt.Errorf("extensions: conflicting file %q is not mergeable", relPath)
}

// state is the persisted activation bookkeeping for one extendee prefix.
type state struct {
	// Active maps extension name -> the links and merges it contributed.
	Active map[string]*activation `json:"active"`
}

type activation struct {
	Prefix string   `json:"prefix"`
	Links  []string `json:"links"`  // extendee-relative link paths created
	Merged []string `json:"merged"` // extendee-relative merged file paths
	// Originals holds pre-merge contents of merged files keyed by relative
	// path, for restoration on deactivate.
	Originals map[string]string `json:"originals"`
}

// Manager performs activation and deactivation on a filesystem.
type Manager struct {
	FS *simfs.FS
	// Merge resolves file conflicts; nil refuses all conflicts.
	Merge MergeFunc
}

// NewManager returns a Manager with no merge policy.
func NewManager(fs *simfs.FS) *Manager { return &Manager{FS: fs} }

func stateFile(extendeePrefix string) string {
	return extendeePrefix + "/.spack/extensions.json"
}

func (m *Manager) loadState(extendeePrefix string) (*state, error) {
	data, err := m.FS.ReadFile(stateFile(extendeePrefix))
	if err != nil {
		return &state{Active: make(map[string]*activation)}, nil
	}
	var s state
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("extensions: corrupt state: %w", err)
	}
	if s.Active == nil {
		s.Active = make(map[string]*activation)
	}
	return &s, nil
}

func (m *Manager) saveState(extendeePrefix string, s *state) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	if err := m.FS.MkdirAll(extendeePrefix + "/.spack"); err != nil {
		return err
	}
	return m.FS.WriteFile(stateFile(extendeePrefix), data)
}

// Active lists the names of extensions activated in an extendee prefix.
func (m *Manager) Active(extendeePrefix string) ([]string, error) {
	s, err := m.loadState(extendeePrefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(s.Active))
	for name := range s.Active {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// IsActive reports whether the named extension is active.
func (m *Manager) IsActive(extendeePrefix, extName string) bool {
	s, err := m.loadState(extendeePrefix)
	if err != nil {
		return false
	}
	_, ok := s.Active[extName]
	return ok
}

// extensionFiles lists an extension's files relative to its prefix,
// skipping provenance metadata.
func (m *Manager) extensionFiles(extPrefix string) ([]string, error) {
	var rels []string
	err := m.FS.Walk(extPrefix, func(p string, isLink bool) error {
		rel := strings.TrimPrefix(p, extPrefix)
		if strings.HasPrefix(rel, "/.spack") {
			return nil
		}
		rels = append(rels, rel)
		return nil
	})
	return rels, err
}

// Activate links every file of an extension record into the extendee
// prefix (§4.2: "the activate operation symbolically links each file in
// the extension prefix into the Python installation prefix, as if it were
// installed directly"). Conflicts go through the merge policy; any refusal
// rolls the activation back and returns an error.
func (m *Manager) Activate(ext, extendee *store.Record) error {
	name := ext.Spec.Name
	st, err := m.loadState(extendee.Prefix)
	if err != nil {
		return err
	}
	if _, already := st.Active[name]; already {
		return fmt.Errorf("extensions: %s is already activated in %s", name, extendee.Prefix)
	}

	rels, err := m.extensionFiles(ext.Prefix)
	if err != nil {
		return err
	}
	act := &activation{Prefix: ext.Prefix, Originals: make(map[string]string)}
	rollback := func() {
		for _, rel := range act.Links {
			_ = m.FS.Remove(extendee.Prefix + rel)
		}
		for _, rel := range act.Merged {
			_ = m.FS.WriteFile(extendee.Prefix+rel, []byte(act.Originals[rel]))
		}
	}

	for _, rel := range rels {
		dst := extendee.Prefix + rel
		dir := dst[:strings.LastIndexByte(dst, '/')]
		if err := m.FS.MkdirAll(dir); err != nil {
			rollback()
			return err
		}
		exists, _ := m.FS.Stat(dst)
		if !exists {
			if err := m.FS.Symlink(ext.Prefix+rel, dst); err != nil {
				rollback()
				return err
			}
			act.Links = append(act.Links, rel)
			continue
		}
		// Conflict: consult the merge policy.
		if m.Merge == nil {
			rollback()
			return fmt.Errorf("extensions: activating %s would overwrite %s", name, dst)
		}
		existing, err := m.FS.ReadFile(dst)
		if err != nil {
			rollback()
			return err
		}
		incoming, err := m.FS.ReadFile(ext.Prefix + rel)
		if err != nil {
			rollback()
			return err
		}
		merged, err := m.Merge(rel, existing, incoming)
		if err != nil {
			rollback()
			return err
		}
		// Merged files become regular files (replacing a symlink if the
		// first writer was itself an extension link).
		if m.FS.IsSymlink(dst) {
			if err := m.FS.Remove(dst); err != nil {
				rollback()
				return err
			}
		}
		if err := m.FS.WriteFile(dst, merged); err != nil {
			rollback()
			return err
		}
		act.Originals[rel] = string(existing)
		act.Merged = append(act.Merged, rel)
	}

	st.Active[name] = act
	return m.saveState(extendee.Prefix, st)
}

// Deactivate removes an extension's links and restores merged files,
// returning the extendee to its previous state (§4.2: "restores the Python
// installation to its pristine state").
func (m *Manager) Deactivate(ext, extendee *store.Record) error {
	name := ext.Spec.Name
	st, err := m.loadState(extendee.Prefix)
	if err != nil {
		return err
	}
	act, ok := st.Active[name]
	if !ok {
		return fmt.Errorf("extensions: %s is not activated in %s", name, extendee.Prefix)
	}
	for _, rel := range act.Links {
		if err := m.FS.Remove(extendee.Prefix + rel); err != nil {
			return err
		}
	}
	for _, rel := range act.Merged {
		if err := m.FS.WriteFile(extendee.Prefix+rel, []byte(act.Originals[rel])); err != nil {
			return err
		}
	}
	delete(st.Active, name)
	return m.saveState(extendee.Prefix, st)
}
