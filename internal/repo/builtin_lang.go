// R and visualization stacks. The R packages exercise the extension
// mechanism's generality claim (§4.2: "this design could also be used with
// other languages with similar extension models, such as R, Ruby, or
// Lua"): r-* packages extend the r interpreter exactly as py-* packages
// extend python.
package repo

import "repro/internal/pkg"

func init() {
	builtinExtraGroups = append(builtinExtraGroups, addRStack, addVisualization)
}

// addRStack defines the R interpreter and extension packages.
func addRStack(r *Repo) {
	rlang := pkg.New("r").
		Describe("The R project for statistical computing.").
		WithHomepage("https://www.r-project.org").
		DependsOn("readline").
		DependsOn("ncurses").
		DependsOn("zlib").
		DependsOn("bzip2").
		DependsOn("curl").
		DependsOn("pcre").
		DependsOn("blas").
		DependsOn("lapack").
		WithBuild("autotools", 90).
		WithArtifacts(300)
	addVersions(rlang, "3.1.3", "3.2.2")
	r.MustAdd(rlang)

	ext := func(name, desc string, units int, deps []string, versions ...string) {
		p := pkg.New(name).Describe(desc).Extends("r").WithBuild("autotools", units)
		for _, d := range deps {
			p.DependsOn(d)
		}
		addVersions(p, versions...)
		r.MustAdd(p)
	}
	ext("r-abind", "Combine multidimensional arrays (an R extension).", 2,
		nil, "1.4-3")
	ext("r-mass", "Modern applied statistics functions (an R extension).", 6,
		nil, "7.3-43")
	ext("r-matrix", "Sparse and dense matrix classes (an R extension).", 12,
		[]string{"blas", "lapack"}, "1.2-2")
	ext("r-ggplot2", "Grammar-of-graphics plotting (an R extension).", 15,
		[]string{"r-mass"}, "1.0.1")
	ext("r-rcpp", "Seamless R and C++ integration (an R extension).", 18,
		nil, "0.12.0")
}

// addVisualization defines the 2015-era visualization stack.
func addVisualization(r *Repo) {
	qt := pkg.New("qt").
		Describe("Cross-platform application framework.").
		DependsOn("zlib").
		DependsOn("libpng").
		DependsOn("openssl").
		DependsOn("sqlite").
		WithBuild("autotools", 400)
	addVersions(qt, "4.8.6", "5.4.2")
	r.MustAdd(qt)

	vtk := pkg.New("vtk").
		Describe("Visualization Toolkit for 3-D graphics and visualization.").
		DependsOn("qt").
		DependsOn("zlib").
		DependsOn("libpng").
		DependsOn("expat").
		DependsOn("cmake", pkg.BuildOnly()).
		WithBuild("cmake", 300)
	addVersions(vtk, "6.1.0")
	r.MustAdd(vtk)

	paraview := pkg.New("paraview").
		Describe("Parallel data analysis and visualization.").
		WithVariant("mpi", true, "Client/server parallel rendering").
		WithVariant("python", false, "Python scripting").
		DependsOn("vtk").
		DependsOn("qt").
		DependsOn("mpi", pkg.When("+mpi")).
		DependsOn("python", pkg.When("+python")).
		DependsOn("py-numpy", pkg.When("+python")).
		DependsOn("hdf5").
		DependsOn("netcdf").
		DependsOn("cmake", pkg.BuildOnly()).
		WithBuild("cmake", 450)
	addVersions(paraview, "4.3.1")
	r.MustAdd(paraview)

	visit := pkg.New("visit").
		Describe("Interactive parallel visualization (LLNL).").
		DependsOn("vtk").
		DependsOn("qt").
		DependsOn("silo").
		DependsOn("hdf5").
		DependsOn("python").
		DependsOn("cmake", pkg.BuildOnly()).
		WithBuild("cmake", 380)
	addVersions(visit, "2.9.2")
	r.MustAdd(visit)

	mesa := pkg.New("mesa").
		Describe("Open-source OpenGL implementation.").
		DependsOn("libxml2").
		DependsOn("expat").
		DependsOn("flex", pkg.BuildOnly()).
		DependsOn("bison", pkg.BuildOnly()).
		WithBuild("autotools", 120)
	addVersions(mesa, "10.4.4")
	r.MustAdd(mesa)
}
