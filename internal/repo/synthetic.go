package repo

import (
	"fmt"
	"math/rand"

	"repro/internal/fetch"
	"repro/internal/pkg"
	"repro/internal/version"
)

// Synthesize grows a repository with deterministic, realistically shaped
// synthetic packages until it holds target packages. Fig. 8 measures
// concretization over all 245 packages of Spack's 2015 repository, whose
// DAG sizes span 1 to just over 50 nodes; the generator reproduces that
// spread with three shapes:
//
//   - leaves (no dependencies), like libelf or zlib;
//   - mid-size packages depending on a few random earlier packages, which
//     yields the 2–20-node bulk of the distribution;
//   - a dependency chain whose members accumulate nodes linearly, giving
//     the 20–50+-node tail.
//
// The generator is deterministic for a given seed, so benchmark runs are
// reproducible.
func Synthesize(r *Repo, target int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var names []string

	add := func(p *pkg.Package) {
		v := version.MustParse("1.0")
		p.WithVersion("1.0", fetch.Checksum(p.Name, v))
		p.WithVersion("1.1", fetch.Checksum(p.Name, version.MustParse("1.1")))
		r.MustAdd(p)
		names = append(names, p.Name)
	}

	// A base population of leaves for others to depend on.
	leaves := target / 5
	if leaves < 8 {
		leaves = 8
	}
	for i := 0; r.Len() < target && i < leaves; i++ {
		add(pkg.New(fmt.Sprintf("synth-leaf-%03d", i)).
			Describe("Synthetic leaf library.").
			WithBuild("autotools", 4+rng.Intn(8)))
	}

	// A chain to produce large DAGs: chain-k depends on chain-(k-1) and
	// one extra leaf, so its DAG has ~2k nodes.
	chainLen := 26
	prev := ""
	for i := 0; r.Len() < target && i < chainLen; i++ {
		p := pkg.New(fmt.Sprintf("synth-chain-%03d", i)).
			Describe("Synthetic chain member for large-DAG scaling.").
			WithBuild("autotools", 6+rng.Intn(10))
		if prev != "" {
			p.DependsOn(prev)
		}
		if len(names) > 0 {
			p.DependsOn(names[rng.Intn(len(names))])
		}
		prev = p.Name
		add(p)
	}

	// The bulk: packages depending on 1–5 random earlier packages.
	for i := 0; r.Len() < target; i++ {
		p := pkg.New(fmt.Sprintf("synth-pkg-%03d", i)).
			Describe("Synthetic mid-stack package.").
			WithBuild("autotools", 5+rng.Intn(20))
		k := 1 + rng.Intn(5)
		seen := make(map[string]bool)
		for j := 0; j < k && j < len(names); j++ {
			dep := names[rng.Intn(len(names))]
			if !seen[dep] {
				seen[dep] = true
				p.DependsOn(dep)
			}
		}
		add(p)
	}
}
