// Builtin package definitions: the Go analogue of Spack's mainline package
// repository. The set includes every package the paper's examples and
// experiments rely on — the mpileaks tool stack (Figs. 1–2, 7, 9), the MPI
// and BLAS/LAPACK virtual-interface providers (Fig. 5), the Python
// extension stack (§4.2), gperftools (§4.1), and the external libraries of
// the ARES stack (Fig. 13) — with realistic versions and dependency
// structure.
package repo

import (
	"repro/internal/fetch"
	"repro/internal/pkg"
	"repro/internal/spec"
	"repro/internal/version"
)

// addVersions registers versions with checksums that match the simulated
// archives, so fetch verification passes (the paper's MD5 directives).
func addVersions(p *pkg.Package, versions ...string) *pkg.Package {
	for _, v := range versions {
		p.WithVersion(v, fetch.Checksum(p.Name, version.MustParse(v)))
	}
	return p
}

// Builtin constructs the mainline repository.
func Builtin() *Repo {
	r := NewRepo("builtin")
	addMpileaksStack(r)
	addMPIProviders(r)
	addBlasLapackProviders(r)
	addPythonStack(r)
	addCommonLibraries(r)
	addTools(r)
	for _, group := range builtinExtraGroups {
		group(r)
	}
	return r
}

// addMpileaksStack defines the paper's running example (Fig. 1) and its
// dependency chain: mpileaks -> callpath -> dyninst -> libdwarf -> libelf.
func addMpileaksStack(r *Repo) {
	mpileaks := pkg.New("mpileaks").
		Describe("Tool to detect and report leaked MPI objects.").
		WithHomepage("https://github.com/hpc/mpileaks").
		WithURL("https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz").
		WithVariant("debug", false, "Build with debugging symbols").
		DependsOn("mpi").
		DependsOn("callpath").
		WithBuild("autotools", 18)
	addVersions(mpileaks, "1.0", "1.1", "1.2", "2.3")
	mpileaks.OnInstall(func(ctx pkg.BuildContext, s *spec.Spec, prefix string) error {
		cp, err := ctx.DepPrefix("callpath")
		if err != nil {
			return err
		}
		if err := ctx.Configure("--prefix="+prefix, "--with-callpath="+cp); err != nil {
			return err
		}
		if err := ctx.Make(); err != nil {
			return err
		}
		return ctx.Make("install")
	})
	r.MustAdd(mpileaks)

	callpath := pkg.New("callpath").
		Describe("Library for representing call paths consistently in distributed tools.").
		WithHomepage("https://github.com/llnl/callpath").
		WithURL("https://github.com/llnl/callpath/archive/v1.0.tar.gz").
		WithVariant("debug", false, "Debug build").
		DependsOn("dyninst").
		DependsOn("mpi").
		WithBuild("cmake", 12)
	addVersions(callpath, "0.9", "1.0", "1.1", "1.2")
	r.MustAdd(callpath)

	// Dyninst: the paper's build-specialization example (Fig. 4) — versions
	// <= 8.1 build with autotools, newer ones with cmake.
	dyninst := pkg.New("dyninst").
		Describe("API for dynamic binary instrumentation.").
		WithHomepage("https://dyninst.org").
		WithURL("https://github.com/dyninst/dyninst/archive/v8.2.1.tar.gz").
		DependsOn("libelf").
		DependsOn("libdwarf").
		DependsOn("boost", pkg.When("@8.1:")).
		WithBuild("cmake", 110)
	addVersions(dyninst, "7.0.1", "8.1.1", "8.1.2", "8.2.1")
	dyninst.OnInstallWhen("@:8.1", func(ctx pkg.BuildContext, s *spec.Spec, prefix string) error {
		if err := ctx.Configure("--prefix=" + prefix); err != nil {
			return err
		}
		if err := ctx.Make(); err != nil {
			return err
		}
		return ctx.Make("install")
	})
	r.MustAdd(dyninst)

	libdwarf := pkg.New("libdwarf").
		Describe("Consumer library interface to DWARF debugging information.").
		WithHomepage("https://www.prevanders.net/dwarf.html").
		WithURL("https://www.prevanders.net/libdwarf-20130729.tar.gz").
		DependsOn("libelf").
		WithBuild("autotools", 16)
	addVersions(libdwarf, "20130207", "20130729", "20140805")
	r.MustAdd(libdwarf)

	libelf := pkg.New("libelf").
		Describe("ELF object file access library.").
		WithHomepage("https://directory.fsf.org/wiki/Libelf").
		WithURL("https://www.mr511.de/software/libelf-0.8.13.tar.gz").
		WithBuild("autotools", 6)
	addVersions(libelf, "0.8.10", "0.8.12", "0.8.13")
	r.MustAdd(libelf)
}

// addMPIProviders defines the versioned virtual-dependency example of
// Fig. 5: mvapich2 and mpich provide different MPI interface versions
// depending on their own version, and gerris requires mpi@2: so mpich 1.x
// can never satisfy it.
func addMPIProviders(r *Repo) {
	mvapich2 := pkg.New("mvapich2").
		Describe("MVAPICH2 MPI over InfiniBand.").
		WithHomepage("https://mvapich.cse.ohio-state.edu").
		WithURL("https://mvapich.cse.ohio-state.edu/download/mvapich/mv2/mvapich2-1.9.tgz").
		ProvidesVirtual("mpi@:2.2", "@1.9").
		ProvidesVirtual("mpi@:3.0", "@2.0:").
		WithBuild("autotools", 90)
	addVersions(mvapich2, "1.9", "2.0", "2.1")
	r.MustAdd(mvapich2)

	mvapich := pkg.New("mvapich").
		Describe("Legacy MVAPICH 1.x MPI.").
		ProvidesVirtual("mpi@:1", "").
		WithBuild("autotools", 70)
	addVersions(mvapich, "1.2")
	r.MustAdd(mvapich)

	mpich := pkg.New("mpich").
		Describe("MPICH: high-performance implementation of MPI.").
		WithHomepage("https://www.mpich.org").
		WithURL("https://www.mpich.org/static/downloads/3.1.4/mpich-3.1.4.tar.gz").
		ProvidesVirtual("mpi@:3", "@3:").
		ProvidesVirtual("mpi@:1", "@1:1.9").
		WithBuild("autotools", 85)
	addVersions(mpich, "1.4.1", "3.0.4", "3.1.4")
	r.MustAdd(mpich)

	openmpi := pkg.New("openmpi").
		Describe("Open MPI: open source MPI-3 implementation.").
		WithHomepage("https://www.open-mpi.org").
		WithURL("https://www.open-mpi.org/software/ompi/v1.8/downloads/openmpi-1.8.8.tar.gz").
		ProvidesVirtual("mpi@:2.2", "@1.4:1.7").
		ProvidesVirtual("mpi@:3.0", "@1.8:").
		DependsOn("hwloc").
		WithBuild("autotools", 95)
	addVersions(openmpi, "1.4.7", "1.6.5", "1.8.8")
	r.MustAdd(openmpi)

	// Vendor MPIs for the cross-compiled machines of Table 3; typically
	// configured as externals in site config.
	bgqmpi := pkg.New("bgq-mpi").
		Describe("IBM Blue Gene/Q system MPI.").
		ProvidesVirtual("mpi@:2.2", "=bgq").
		WithBuild("autotools", 1)
	addVersions(bgqmpi, "1.0")
	r.MustAdd(bgqmpi)

	craympi := pkg.New("cray-mpi").
		Describe("Cray MPT system MPI.").
		ProvidesVirtual("mpi@:3.0", "=cray-xe6").
		WithBuild("autotools", 1)
	addVersions(craympi, "7.0.1")
	r.MustAdd(craympi)

	hwloc := pkg.New("hwloc").
		Describe("Portable hardware locality abstraction.").
		WithBuild("autotools", 8)
	addVersions(hwloc, "1.9", "1.11.1")
	r.MustAdd(hwloc)

	// Gerris needs MPI >= 2 (Fig. 5's constrained dependent).
	gerris := pkg.New("gerris").
		Describe("Computational fluid dynamics solver.").
		WithHomepage("http://gfs.sourceforge.net").
		DependsOn("mpi@2:").
		WithBuild("autotools", 40)
	addVersions(gerris, "1.3.2")
	r.MustAdd(gerris)
}

// addBlasLapackProviders defines the second family of fungible interfaces
// from §3.3: BLAS and LAPACK.
func addBlasLapackProviders(r *Repo) {
	atlas := pkg.New("atlas").
		Describe("Automatically Tuned Linear Algebra Software.").
		ProvidesVirtual("blas", "").
		WithBuild("autotools", 120)
	addVersions(atlas, "3.10.2", "3.11.34")
	r.MustAdd(atlas)

	netlibBlas := pkg.New("netlib-blas").
		Describe("Reference BLAS from Netlib.").
		ProvidesVirtual("blas", "").
		WithBuild("cmake", 30)
	addVersions(netlibBlas, "3.5.0")
	r.MustAdd(netlibBlas)

	mkl := pkg.New("mkl").
		Describe("Intel Math Kernel Library (vendor BLAS/LAPACK).").
		ProvidesVirtual("blas", "").
		ProvidesVirtual("lapack", "").
		WithBuild("autotools", 1)
	addVersions(mkl, "11.1")
	r.MustAdd(mkl)

	netlibLapack := pkg.New("netlib-lapack").
		Describe("Reference LAPACK from Netlib (the paper's LAPACK build).").
		WithURL("https://www.netlib.org/lapack/lapack-3.5.0.tgz").
		ProvidesVirtual("lapack", "").
		DependsOn("blas").
		WithBuild("cmake", 26)
	addVersions(netlibLapack, "3.4.2", "3.5.0")
	r.MustAdd(netlibLapack)
}

// addPythonStack defines the interpreted-language use case of §4.2: python
// plus extensions that install into their own prefixes and activate into
// the interpreter.
func addPythonStack(r *Repo) {
	python := pkg.New("python").
		Describe("The Python programming language.").
		WithHomepage("https://www.python.org").
		WithURL("https://www.python.org/ftp/python/2.7.9/Python-2.7.9.tgz").
		DependsOn("zlib").
		DependsOn("bzip2").
		DependsOn("ncurses").
		DependsOn("readline").
		DependsOn("sqlite").
		DependsOn("openssl").
		WithPatch("python-bgq-xlc.patch", "=bgq%xl").
		WithPatch("python-bgq-clang.patch", "=bgq%clang").
		WithBuild("autotools", 50).
		WithArtifacts(450) // the stdlib's many small .py files drive NFS cost
	addVersions(python, "2.7.8", "2.7.9", "3.4.2")
	r.MustAdd(python)

	setuptools := pkg.New("py-setuptools").
		Describe("Python packaging toolchain (an extension).").
		Extends("python").
		WithBuild("autotools", 2)
	addVersions(setuptools, "11.3.1", "18.1")
	r.MustAdd(setuptools)

	numpy := pkg.New("py-numpy").
		Describe("NumPy array library (an extension).").
		Extends("python").
		DependsOn("blas").
		DependsOn("lapack").
		WithBuild("autotools", 25)
	addVersions(numpy, "1.8.2", "1.9.1")
	r.MustAdd(numpy)

	scipy := pkg.New("py-scipy").
		Describe("SciPy scientific library (an extension).").
		Extends("python").
		DependsOn("py-numpy").
		WithBuild("autotools", 35)
	addVersions(scipy, "0.14.1", "0.15.0")
	r.MustAdd(scipy)

	pynose := pkg.New("py-nose").
		Describe("Python test runner (an extension).").
		Extends("python").
		DependsOn("py-setuptools").
		WithBuild("autotools", 2)
	addVersions(pynose, "1.3.4")
	r.MustAdd(pynose)
}

// addCommonLibraries defines widely shared leaf and mid-stack libraries,
// including the seven packages measured in Figs. 10–11 that are not
// defined elsewhere (libpng; libelf/libdwarf/mpileaks/dyninst/python come
// from their stacks and LAPACK from the providers).
func addCommonLibraries(r *Repo) {
	leaf := func(name, desc string, units int, versions ...string) {
		p := pkg.New(name).Describe(desc).WithBuild("autotools", units)
		addVersions(p, versions...)
		r.MustAdd(p)
	}
	leaf("zlib", "Lossless data-compression library.", 4, "1.2.7", "1.2.8")
	leaf("bzip2", "High-quality block-sorting compressor.", 4, "1.0.6")
	leaf("ncurses", "Terminal-independent screen handling.", 10, "5.9", "6.0")
	leaf("papi", "Performance Application Programming Interface.", 12, "5.3.0", "5.4.1")
	leaf("gsl", "GNU Scientific Library.", 35, "1.16", "2.1")
	leaf("libpng", "Official PNG reference library (Fig. 10 subject).", 8, "1.6.16")
	leaf("tcl", "Tool Command Language.", 20, "8.6.3")
	leaf("hpdf", "libHaru PDF generation library.", 10, "2.3.0")
	leaf("qd", "Double-double and quad-double arithmetic.", 9, "2.3.13")
	leaf("pcre", "Perl-compatible regular expressions.", 7, "8.36")

	// openssl 1.0.1h predates the Heartbleed-series fixes the site rolled
	// out; it stays installable by explicit pin but is never chosen.
	openssl := pkg.New("openssl").
		Describe("TLS/SSL and crypto library.").
		WithBuild("autotools", 45)
	openssl.WithVersion("1.0.1h", fetch.Checksum("openssl", version.MustParse("1.0.1h")), pkg.Deprecated())
	addVersions(openssl, "1.0.2d")
	r.MustAdd(openssl)

	readline := pkg.New("readline").
		Describe("GNU line-editing library.").
		DependsOn("ncurses").
		WithBuild("autotools", 7)
	addVersions(readline, "6.3")
	r.MustAdd(readline)

	sqlite := pkg.New("sqlite").
		Describe("Embedded SQL database engine.").
		DependsOn("readline").
		WithBuild("autotools", 22)
	addVersions(sqlite, "3.8.5")
	r.MustAdd(sqlite)

	tk := pkg.New("tk").
		Describe("Tk GUI toolkit for Tcl.").
		DependsOn("tcl").
		WithBuild("autotools", 18)
	addVersions(tk, "8.6.3")
	r.MustAdd(tk)

	boost := pkg.New("boost").
		Describe("Peer-reviewed portable C++ source libraries.").
		WithHomepage("https://www.boost.org").
		WithURL("https://downloads.sourceforge.net/project/boost/boost/1.55.0/boost_1_55_0.tar.bz2").
		WithBuild("autotools", 65)
	addVersions(boost, "1.54.0", "1.55.0", "1.59.0")
	r.MustAdd(boost)

	hdf5 := pkg.New("hdf5").
		Describe("HDF5 data model and file format.").
		WithVariant("mpi", true, "Enable parallel I/O via MPI").
		DependsOn("zlib").
		DependsOn("mpi", pkg.When("+mpi")).
		WithBuild("autotools", 55)
	addVersions(hdf5, "1.8.13", "1.8.15")
	r.MustAdd(hdf5)

	silo := pkg.New("silo").
		Describe("Mesh and field I/O library (the --with-silo example of §3.5).").
		DependsOn("hdf5").
		WithBuild("autotools", 28)
	addVersions(silo, "4.9", "4.10.1")
	r.MustAdd(silo)

	hypre := pkg.New("hypre").
		Describe("Scalable linear solvers and multigrid methods.").
		DependsOn("mpi").
		DependsOn("blas").
		DependsOn("lapack").
		WithBuild("autotools", 48)
	addVersions(hypre, "2.9.0b", "2.10.0b")
	r.MustAdd(hypre)

	samrai := pkg.New("samrai").
		Describe("Structured adaptive mesh refinement framework.").
		DependsOn("mpi").
		DependsOn("hdf5").
		DependsOn("boost").
		WithBuild("autotools", 75)
	addVersions(samrai, "3.9.1", "3.10.0")
	r.MustAdd(samrai)

	ga := pkg.New("ga").
		Describe("Global Arrays partitioned global address space toolkit.").
		DependsOn("mpi").
		DependsOn("blas").
		WithBuild("autotools", 30)
	addVersions(ga, "5.3", "5.4")
	r.MustAdd(ga)

	// gperftools: the combinatorial-naming use case of §4.1, with the
	// BG/Q patch and per-platform configure logic of Fig. 12.
	gperftools := pkg.New("gperftools").
		Describe("Google performance tools: tcmalloc and profilers.").
		WithHomepage("https://github.com/gperftools/gperftools").
		WithPatch("patch.gperftools2.4_xlc", "@2.4%xl").
		WithBuild("autotools", 24)
	addVersions(gperftools, "2.1", "2.3", "2.4")
	gperftools.OnInstallWhen("=bgq%xl", func(ctx pkg.BuildContext, s *spec.Spec, prefix string) error {
		if err := ctx.Configure("--prefix="+prefix, "LDFLAGS=-qnostaticlink"); err != nil {
			return err
		}
		if err := ctx.Make(); err != nil {
			return err
		}
		return ctx.Make("install")
	})
	gperftools.OnInstallWhen("=bgq", func(ctx pkg.BuildContext, s *spec.Spec, prefix string) error {
		if err := ctx.Configure("--prefix="+prefix, "LDFLAGS=-dynamic"); err != nil {
			return err
		}
		if err := ctx.Make(); err != nil {
			return err
		}
		return ctx.Make("install")
	})
	r.MustAdd(gperftools)

	// RAJA: a C++11 performance-portability layer — exercises the
	// feature-aware compiler selection of §4.5 ("our codes are relying on
	// advanced compiler capabilities, like C++11 language features,
	// OpenMP versions").
	raja := pkg.New("raja").
		Describe("LLNL C++11 loop-level performance portability abstractions.").
		RequiresCompilerFeature("cxx11", "").
		RequiresCompilerFeature("openmp4", "+openmp").
		WithVariant("openmp", false, "Enable the OpenMP 4 back end").
		WithBuild("cmake", 40)
	addVersions(raja, "0.1.0")
	r.MustAdd(raja)

	// ROSE: the conditional-dependency example of §3.2.4 — boost version
	// depends on the compiler version.
	rose := pkg.New("rose").
		Describe("Compiler infrastructure for source-to-source analysis.").
		DependsOn("boost@1.54.0", pkg.When("%gcc@:4")).
		DependsOn("boost@1.59.0", pkg.When("%gcc@5:")).
		WithBuild("autotools", 200)
	addVersions(rose, "0.9.6")
	r.MustAdd(rose)
}

// addTools defines build tools.
func addTools(r *Repo) {
	cmake := pkg.New("cmake").
		Describe("Cross-platform build-system generator.").
		WithHomepage("https://cmake.org").
		DependsOn("ncurses").
		WithBuild("autotools", 40)
	addVersions(cmake, "2.8.10", "3.0.2", "3.3.1")
	r.MustAdd(cmake)

	autoconf := pkg.New("autoconf").
		Describe("GNU configure-script generator.").
		WithBuild("autotools", 5)
	addVersions(autoconf, "2.69")
	r.MustAdd(autoconf)
}

// PublishAll registers every declared version of every package on a mirror,
// making the simulated download universe consistent with the repository.
func PublishAll(m *fetch.Mirror, repos ...*Repo) {
	for _, r := range repos {
		for _, name := range r.Names() {
			p, _ := r.Get(name)
			for _, vi := range p.VersionInfos {
				m.Publish(name, vi.Version)
			}
		}
	}
}
