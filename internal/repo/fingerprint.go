package repo

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/pkg"
	"repro/internal/spec"
)

// Fingerprint returns a stable hash over every package definition visible
// along the path, in precedence order. It is the repository component of the
// concretizer's memo-cache key: any change to a directive that can affect
// concretization — versions, dependencies, provides, variants, features,
// namespaces, shadowing order — produces a different fingerprint, so cached
// concretization results are invalidated automatically.
//
// Repositories are conventionally frozen after construction; to keep the
// warm-cache path cheap the serialization is computed once and reused until
// some repository's generation counter (bumped by Add) changes.
func (p *Path) Fingerprint() string {
	p.fpMu.Lock()
	defer p.fpMu.Unlock()
	gens := make([]uint64, len(p.repos))
	for i, r := range p.repos {
		gens[i] = r.generation()
	}
	if p.fpCache != "" && len(gens) == len(p.fpGens) {
		stale := false
		for i := range gens {
			if gens[i] != p.fpGens[i] {
				stale = true
				break
			}
		}
		if !stale {
			return p.fpCache
		}
	}
	var b strings.Builder
	for _, r := range p.repos {
		fmt.Fprintf(&b, "repo %s\n", r.Namespace)
		for _, name := range r.Names() {
			def, _ := r.Get(name)
			fingerprintPackage(&b, def)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	p.fpCache = hex.EncodeToString(sum[:])
	p.fpGens = gens
	return p.fpCache
}

// fingerprintPackage serializes the concretization-relevant directives of
// one package definition. Install procedures are deliberately excluded: they
// affect builds, not concretization.
func fingerprintPackage(b *strings.Builder, def *pkg.Package) {
	fmt.Fprintf(b, "package %s\n", def.Name)
	for _, vi := range def.VersionInfos {
		fmt.Fprintf(b, "  version %s md5=%s deprecated=%v\n", vi.Version, vi.MD5, vi.Deprecated)
	}
	for _, d := range def.Dependencies {
		fmt.Fprintf(b, "  depends_on %s when=%s buildonly=%v\n",
			d.Constraint, specString(d.When), d.BuildOnly)
	}
	for _, pr := range def.Provides {
		fmt.Fprintf(b, "  provides %s when=%s\n", pr.Virtual, specString(pr.When))
	}
	for _, v := range def.Variants {
		fmt.Fprintf(b, "  variant %s default=%v\n", v.Name, v.Default)
	}
	for _, f := range def.Features {
		fmt.Fprintf(b, "  requires_feature %s when=%s\n", f.Feature, specString(f.When))
	}
	if def.Extendee != "" {
		fmt.Fprintf(b, "  extends %s\n", def.Extendee)
	}
}

func specString(s *spec.Spec) string {
	if s == nil {
		return ""
	}
	return s.String()
}
