// Additional builtin packages: the wider 2015-era HPC software ecosystem
// that Spack's mainline repository carried alongside the paper's examples —
// developer tools, math libraries and solvers, I/O stacks, performance
// tools (including the LLNL tool chain around STAT and SCR), interpreters,
// and more Python extensions. These give the Fig. 8 concretization
// workload realistic DAG shapes and exercise variants, virtuals and
// conditional dependencies at repository scale.
package repo

import "repro/internal/pkg"

func init() {
	// Append (never assign): other files' init functions register their
	// own groups and file-order between init calls must not matter.
	builtinExtraGroups = append(builtinExtraGroups,
		addDevTools,
		addCompressionLibraries,
		addMathLibraries,
		addIOLibraries,
		addPerfTools,
		addLLNLToolStack,
		addInterpreters,
		addMorePythonExtensions,
	)
}

// builtinExtraGroups is consumed by Builtin (set in init to keep the two
// files independent).
var builtinExtraGroups []func(*Repo)

// addDevTools defines build and developer tooling.
func addDevTools(r *Repo) {
	leaf := func(name, desc string, units int, versions ...string) *pkg.Package {
		p := pkg.New(name).Describe(desc).WithBuild("autotools", units)
		addVersions(p, versions...)
		r.MustAdd(p)
		return p
	}
	leaf("m4", "GNU macro processor.", 5, "1.4.17")
	leaf("libtool", "Generic shared-library support script.", 6, "2.4.2", "2.4.6")
	leaf("automake", "Makefile generator for autoconf.", 6, "1.14.1", "1.15")
	leaf("pkg-config", "Compile/link flag helper for libraries.", 5, "0.28")
	leaf("flex", "Fast lexical analyzer generator.", 8, "2.5.39")
	leaf("bison", "Parser generator compatible with yacc.", 10, "3.0.4")
	leaf("expat", "Stream-oriented XML parser library.", 6, "2.1.0")
	leaf("libiconv", "Character-set conversion library.", 7, "1.14")
	leaf("gettext", "Internationalization framework.", 20, "0.19.4")
	leaf("libsigsegv", "Page-fault handling library.", 3, "2.10")
	leaf("nasm", "Netwide assembler.", 6, "2.11.06")

	swig := pkg.New("swig").
		Describe("Interface compiler connecting C/C++ with scripting languages.").
		DependsOn("pcre").
		WithBuild("autotools", 18)
	addVersions(swig, "3.0.2", "3.0.7")
	r.MustAdd(swig)

	libxml2 := pkg.New("libxml2").
		Describe("XML parser and toolkit from the GNOME project.").
		DependsOn("zlib").
		DependsOn("libiconv").
		WithBuild("autotools", 22)
	addVersions(libxml2, "2.9.2")
	r.MustAdd(libxml2)

	curl := pkg.New("curl").
		Describe("Command-line tool and library for URL transfers.").
		DependsOn("openssl").
		DependsOn("zlib").
		WithBuild("autotools", 20)
	addVersions(curl, "7.42.1", "7.44.0")
	r.MustAdd(curl)

	git := pkg.New("git").
		Describe("Distributed version control system.").
		DependsOn("curl").
		DependsOn("expat").
		DependsOn("gettext").
		DependsOn("zlib").
		WithBuild("autotools", 40)
	addVersions(git, "2.2.1", "2.5.0")
	r.MustAdd(git)

	subversion := pkg.New("subversion").
		Describe("Centralized version control system.").
		DependsOn("apr").
		DependsOn("apr-util").
		DependsOn("zlib").
		DependsOn("sqlite").
		WithBuild("autotools", 35)
	addVersions(subversion, "1.8.13")
	r.MustAdd(subversion)

	apr := pkg.New("apr").
		Describe("Apache portable runtime.").
		WithBuild("autotools", 15)
	addVersions(apr, "1.5.2")
	r.MustAdd(apr)

	aprUtil := pkg.New("apr-util").
		Describe("Apache portable runtime utilities.").
		DependsOn("apr").
		DependsOn("expat").
		WithBuild("autotools", 12)
	addVersions(aprUtil, "1.5.4")
	r.MustAdd(aprUtil)

	doxygen := pkg.New("doxygen").
		Describe("Source-code documentation generator.").
		DependsOn("flex", pkg.BuildOnly()).
		DependsOn("bison", pkg.BuildOnly()).
		WithBuild("cmake", 45)
	addVersions(doxygen, "1.8.10")
	r.MustAdd(doxygen)
}

// addCompressionLibraries defines compression codecs.
func addCompressionLibraries(r *Repo) {
	leaf := func(name, desc string, units int, versions ...string) {
		p := pkg.New(name).Describe(desc).WithBuild("autotools", units)
		addVersions(p, versions...)
		r.MustAdd(p)
	}
	leaf("xz", "LZMA compression utilities.", 8, "5.2.0", "5.2.1")
	leaf("lz4", "Extremely fast compression algorithm.", 5, "1.7.1")
	leaf("snappy", "Fast compressor/decompressor from Google.", 6, "1.1.2")
	leaf("szip", "Science-data lossless compression (HDF).", 5, "2.1")
	leaf("zfp", "Compressed floating-point arrays.", 8, "0.4.1")
}

// addMathLibraries defines solvers, partitioners, and dense/sparse math.
func addMathLibraries(r *Repo) {
	openblas := pkg.New("openblas").
		Describe("Optimized BLAS with LAPACK, successor of GotoBLAS.").
		ProvidesVirtual("blas", "").
		ProvidesVirtual("lapack", "@0.2.14:").
		WithBuild("autotools", 70)
	addVersions(openblas, "0.2.13", "0.2.14")
	r.MustAdd(openblas)

	fftw := pkg.New("fftw").
		Describe("Fastest Fourier Transform in the West.").
		WithVariant("mpi", false, "Build MPI-parallel transforms").
		DependsOn("mpi", pkg.When("+mpi")).
		WithBuild("autotools", 60)
	addVersions(fftw, "3.3.3", "3.3.4")
	r.MustAdd(fftw)

	metis := pkg.New("metis").
		Describe("Serial graph partitioning and fill-reducing ordering.").
		WithBuild("cmake", 25)
	addVersions(metis, "4.0.3", "5.1.0")
	r.MustAdd(metis)

	parmetis := pkg.New("parmetis").
		Describe("Parallel graph partitioning (MPI).").
		DependsOn("metis@5:").
		DependsOn("mpi").
		WithBuild("cmake", 30)
	addVersions(parmetis, "4.0.3")
	r.MustAdd(parmetis)

	scotch := pkg.New("scotch").
		Describe("Graph/mesh partitioning and sparse matrix ordering.").
		WithVariant("mpi", true, "Build PT-Scotch").
		DependsOn("mpi", pkg.When("+mpi")).
		DependsOn("zlib").
		DependsOn("flex", pkg.BuildOnly()).
		DependsOn("bison", pkg.BuildOnly()).
		WithBuild("autotools", 35)
	addVersions(scotch, "6.0.3")
	r.MustAdd(scotch)

	superlu := pkg.New("superlu").
		Describe("Direct solver for sparse linear systems (serial).").
		DependsOn("blas").
		WithBuild("cmake", 22)
	addVersions(superlu, "4.3")
	r.MustAdd(superlu)

	superluDist := pkg.New("superlu-dist").
		Describe("Distributed-memory sparse direct solver.").
		DependsOn("mpi").
		DependsOn("blas").
		DependsOn("lapack").
		DependsOn("parmetis").
		DependsOn("metis@5:").
		WithBuild("autotools", 40)
	addVersions(superluDist, "3.3", "4.1")
	r.MustAdd(superluDist)

	mumps := pkg.New("mumps").
		Describe("Multifrontal massively parallel sparse direct solver.").
		WithVariant("mpi", true, "Parallel solver").
		DependsOn("mpi", pkg.When("+mpi")).
		DependsOn("blas").
		DependsOn("scotch").
		WithBuild("autotools", 55)
	addVersions(mumps, "5.0.0")
	r.MustAdd(mumps)

	eigen := pkg.New("eigen").
		Describe("C++ template library for linear algebra.").
		RequiresCompilerFeature("cxx11", "@3.3:").
		WithBuild("cmake", 8)
	addVersions(eigen, "3.2.5")
	r.MustAdd(eigen)

	suiteSparse := pkg.New("suite-sparse").
		Describe("Sparse matrix algorithms (UMFPACK, CHOLMOD, ...).").
		DependsOn("blas").
		DependsOn("lapack").
		DependsOn("metis@5:").
		WithBuild("autotools", 45)
	addVersions(suiteSparse, "4.4.5")
	r.MustAdd(suiteSparse)

	petsc := pkg.New("petsc").
		Describe("Portable, extensible toolkit for scientific computation.").
		WithVariant("hypre", true, "Enable the Hypre preconditioners").
		WithVariant("superlu-dist", true, "Enable SuperLU_DIST").
		WithVariant("metis", true, "Enable METIS/ParMETIS").
		DependsOn("mpi").
		DependsOn("blas").
		DependsOn("lapack").
		DependsOn("hypre", pkg.When("+hypre")).
		DependsOn("superlu-dist", pkg.When("+superlu-dist")).
		DependsOn("parmetis", pkg.When("+metis")).
		DependsOn("metis@5:", pkg.When("+metis")).
		DependsOn("python", pkg.BuildOnly()).
		WithBuild("autotools", 150)
	addVersions(petsc, "3.5.3", "3.6.1")
	r.MustAdd(petsc)

	trilinos := pkg.New("trilinos").
		Describe("Algorithms for large-scale scientific problems (Sandia).").
		RequiresCompilerFeature("cxx11", "@12:").
		DependsOn("mpi").
		DependsOn("blas").
		DependsOn("lapack").
		DependsOn("boost").
		DependsOn("netcdf").
		WithBuild("cmake", 350)
	addVersions(trilinos, "11.14.3", "12.0.1")
	r.MustAdd(trilinos)

	sundials := pkg.New("sundials").
		Describe("Suite of nonlinear differential/algebraic solvers.").
		DependsOn("mpi").
		DependsOn("blas").
		WithBuild("cmake", 38)
	addVersions(sundials, "2.6.2")
	r.MustAdd(sundials)
}

// addIOLibraries defines the scientific I/O stack.
func addIOLibraries(r *Repo) {
	netcdf := pkg.New("netcdf").
		Describe("Network Common Data Form library.").
		WithVariant("mpi", true, "Parallel I/O through HDF5").
		DependsOn("hdf5+mpi", pkg.When("+mpi")).
		DependsOn("hdf5~mpi", pkg.When("~mpi")).
		DependsOn("curl").
		DependsOn("zlib").
		WithBuild("autotools", 42)
	addVersions(netcdf, "4.3.3")
	r.MustAdd(netcdf)

	netcdfFortran := pkg.New("netcdf-fortran").
		Describe("Fortran bindings for NetCDF.").
		DependsOn("netcdf").
		WithBuild("autotools", 15)
	addVersions(netcdfFortran, "4.4.2")
	r.MustAdd(netcdfFortran)

	parallelNetcdf := pkg.New("parallel-netcdf").
		Describe("Parallel I/O for classic NetCDF files (PnetCDF).").
		DependsOn("mpi").
		WithBuild("autotools", 30)
	addVersions(parallelNetcdf, "1.6.1")
	r.MustAdd(parallelNetcdf)

	adios := pkg.New("adios").
		Describe("Adaptable I/O system for exascale data.").
		DependsOn("mpi").
		DependsOn("zlib").
		DependsOn("mxml").
		WithBuild("autotools", 48)
	addVersions(adios, "1.9.0")
	r.MustAdd(adios)

	mxml := pkg.New("mxml").
		Describe("Small XML parsing library.").
		WithBuild("autotools", 5)
	addVersions(mxml, "2.9")
	r.MustAdd(mxml)
}

// addPerfTools defines the community performance-tool ecosystem.
func addPerfTools(r *Repo) {
	pdt := pkg.New("pdt").
		Describe("Program database toolkit for source analysis.").
		WithBuild("autotools", 25)
	addVersions(pdt, "3.20")
	r.MustAdd(pdt)

	tau := pkg.New("tau").
		Describe("Tuning and Analysis Utilities profiler.").
		WithVariant("mpi", true, "Profile MPI programs").
		WithVariant("python", false, "Python bindings").
		DependsOn("pdt").
		DependsOn("papi").
		DependsOn("mpi", pkg.When("+mpi")).
		DependsOn("python", pkg.When("+python")).
		WithBuild("autotools", 80)
	addVersions(tau, "2.23.1", "2.24.1")
	r.MustAdd(tau)

	otf2 := pkg.New("otf2").
		Describe("Open Trace Format 2 library.").
		WithBuild("autotools", 20)
	addVersions(otf2, "1.5.1", "2.0")
	r.MustAdd(otf2)

	cubeLib := pkg.New("cube").
		Describe("Performance report explorer for Score-P/Scalasca.").
		DependsOn("zlib").
		WithBuild("autotools", 30)
	addVersions(cubeLib, "4.3.2")
	r.MustAdd(cubeLib)

	scorep := pkg.New("scorep").
		Describe("Scalable performance measurement infrastructure.").
		DependsOn("mpi").
		DependsOn("papi").
		DependsOn("otf2").
		DependsOn("cube").
		DependsOn("pdt").
		WithBuild("autotools", 65)
	addVersions(scorep, "1.4.1")
	r.MustAdd(scorep)

	scalasca := pkg.New("scalasca").
		Describe("Scalable trace-based performance analysis.").
		DependsOn("mpi").
		DependsOn("scorep").
		DependsOn("otf2").
		DependsOn("cube").
		WithBuild("autotools", 50)
	addVersions(scalasca, "2.2.2")
	r.MustAdd(scalasca)

	hpctoolkit := pkg.New("hpctoolkit").
		Describe("Sampling-based performance measurement (Rice).").
		DependsOn("papi").
		DependsOn("libdwarf").
		DependsOn("libelf").
		DependsOn("boost").
		WithBuild("autotools", 90)
	addVersions(hpctoolkit, "5.4.0")
	r.MustAdd(hpctoolkit)

	valgrind := pkg.New("valgrind").
		Describe("Dynamic analysis framework (memcheck, cachegrind...).").
		WithVariant("mpi", true, "Wrappers for MPI programs").
		DependsOn("mpi", pkg.When("+mpi")).
		WithBuild("autotools", 55)
	addVersions(valgrind, "3.10.1")
	r.MustAdd(valgrind)

	likwid := pkg.New("likwid").
		Describe("Performance monitoring for x86 processors.").
		DependsOn("lua").
		WithBuild("autotools", 25)
	addVersions(likwid, "4.0.1")
	r.MustAdd(likwid)
}

// addLLNLToolStack defines the LLNL debugging/resilience tool chain the
// paper's group maintains: STAT and its dependency stack, SCR, and the
// support libraries (the real dependencies of callpath/mpileaks).
func addLLNLToolStack(r *Repo) {
	adeptUtils := pkg.New("adept-utils").
		Describe("Utilities for LLNL performance tools.").
		DependsOn("boost").
		DependsOn("mpi").
		WithBuild("cmake", 10)
	addVersions(adeptUtils, "1.0", "1.0.1")
	r.MustAdd(adeptUtils)

	graphlib := pkg.New("graphlib").
		Describe("Graph library for tool communication trees.").
		WithBuild("cmake", 8)
	addVersions(graphlib, "2.0.0")
	r.MustAdd(graphlib)

	launchmon := pkg.New("launchmon").
		Describe("Tool daemon launching infrastructure.").
		DependsOn("autoconf", pkg.BuildOnly()).
		DependsOn("libelf").
		WithBuild("autotools", 28)
	addVersions(launchmon, "1.0.1")
	r.MustAdd(launchmon)

	mrnet := pkg.New("mrnet").
		Describe("Multicast/reduction software overlay network.").
		DependsOn("boost").
		WithBuild("autotools", 35)
	addVersions(mrnet, "4.1.0", "5.0.1")
	r.MustAdd(mrnet)

	stat := pkg.New("stat").
		Describe("Stack Trace Analysis Tool for debugging at scale.").
		DependsOn("dyninst").
		DependsOn("graphlib").
		DependsOn("launchmon").
		DependsOn("mrnet").
		DependsOn("mpi").
		WithBuild("autotools", 45)
	addVersions(stat, "2.1.0", "2.2.0")
	r.MustAdd(stat)

	lwgrp := pkg.New("lwgrp").
		Describe("Lightweight group representation for MPI tools.").
		DependsOn("mpi").
		WithBuild("autotools", 6)
	addVersions(lwgrp, "1.0.2")
	r.MustAdd(lwgrp)

	dtcmp := pkg.New("dtcmp").
		Describe("Datatype comparison and sorting for MPI.").
		DependsOn("mpi").
		DependsOn("lwgrp").
		WithBuild("autotools", 8)
	addVersions(dtcmp, "1.0.3")
	r.MustAdd(dtcmp)

	scr := pkg.New("scr").
		Describe("Scalable checkpoint/restart library.").
		DependsOn("mpi").
		DependsOn("dtcmp").
		WithBuild("cmake", 30)
	addVersions(scr, "1.1.8")
	r.MustAdd(scr)

	spindle := pkg.New("spindle").
		Describe("Scalable dynamic-library loading for HPC.").
		DependsOn("launchmon").
		WithBuild("autotools", 18)
	addVersions(spindle, "0.8.1")
	r.MustAdd(spindle)

	muster := pkg.New("muster").
		Describe("Massively scalable clustering library.").
		DependsOn("boost").
		DependsOn("mpi").
		WithBuild("cmake", 12)
	addVersions(muster, "1.0.1")
	r.MustAdd(muster)
}

// addInterpreters defines additional language runtimes.
func addInterpreters(r *Repo) {
	lua := pkg.New("lua").
		Describe("Lightweight embeddable scripting language.").
		DependsOn("ncurses").
		DependsOn("readline").
		WithBuild("autotools", 12)
	addVersions(lua, "5.1.5", "5.3.1")
	r.MustAdd(lua)

	perl := pkg.New("perl").
		Describe("Practical Extraction and Report Language.").
		WithBuild("autotools", 60)
	addVersions(perl, "5.20.2", "5.22.0")
	r.MustAdd(perl)

	ruby := pkg.New("ruby").
		Describe("Dynamic object-oriented language.").
		DependsOn("openssl").
		DependsOn("readline").
		DependsOn("zlib").
		WithBuild("autotools", 65)
	addVersions(ruby, "2.2.2")
	r.MustAdd(ruby)
}

// addMorePythonExtensions widens the §4.2 extension ecosystem.
func addMorePythonExtensions(r *Repo) {
	ext := func(name, desc string, units int, deps []string, versions ...string) {
		p := pkg.New(name).Describe(desc).Extends("python").WithBuild("autotools", units)
		for _, d := range deps {
			p.DependsOn(d)
		}
		addVersions(p, versions...)
		r.MustAdd(p)
	}
	ext("py-six", "Python 2/3 compatibility shims (an extension).", 1,
		nil, "1.9.0")
	ext("py-cython", "C extensions compiler for Python (an extension).", 15,
		nil, "0.21.2", "0.22")
	ext("py-dateutil", "Datetime extensions (an extension).", 2,
		[]string{"py-six"}, "2.4.0")
	ext("py-pyparsing", "Grammar parsing module (an extension).", 2,
		nil, "2.0.3")
	ext("py-virtualenv", "Isolated Python environments (an extension).", 3,
		[]string{"py-setuptools"}, "13.0.1")
	ext("py-mpi4py", "MPI bindings for Python (an extension).", 12,
		[]string{"mpi"}, "1.3.1")
	ext("py-matplotlib", "2-D plotting library (an extension).", 45,
		[]string{"py-numpy", "py-dateutil", "py-pyparsing", "libpng"}, "1.4.2")
	ext("py-h5py", "HDF5 bindings for Python (an extension).", 18,
		[]string{"py-numpy", "py-cython", "hdf5"}, "2.4.0")
}
