package repo

import (
	"testing"

	"repro/internal/pkg"
	"repro/internal/syntax"
)

func TestBuiltinWellFormed(t *testing.T) {
	r := Builtin()
	if r.Len() < 40 {
		t.Errorf("builtin repo has only %d packages", r.Len())
	}
	for _, name := range r.Names() {
		p, _ := r.Get(name)
		if err := p.Validate(); err != nil {
			t.Errorf("package %s invalid: %v", name, err)
		}
		if p.Description == "" {
			t.Errorf("package %s missing description", name)
		}
		if len(p.VersionInfos) == 0 {
			t.Errorf("package %s has no versions", name)
		}
	}
}

func TestBuiltinDependencyClosure(t *testing.T) {
	// Every declared dependency must resolve to a package or a virtual.
	r := Builtin()
	path := NewPath(r)
	for _, name := range r.Names() {
		p, _ := r.Get(name)
		for _, d := range p.Dependencies {
			dep := d.Constraint.Name
			if _, _, ok := path.Get(dep); ok {
				continue
			}
			if path.IsVirtual(dep) {
				continue
			}
			t.Errorf("package %s depends on unknown %q", name, dep)
		}
	}
}

func TestPathPrecedence(t *testing.T) {
	builtin := NewRepo("builtin")
	builtin.MustAdd(pkg.New("zlib").Describe("builtin zlib").WithVersion("1.2.8", "x"))
	site := NewRepo("llnl.site")
	site.MustAdd(pkg.New("zlib").Describe("site zlib").WithVersion("1.2.8-llnl", "y"))

	path := NewPath(builtin)
	p, ns, ok := path.Get("zlib")
	if !ok || ns != "builtin" || p.Description != "builtin zlib" {
		t.Fatalf("builtin lookup = %v %q %v", p, ns, ok)
	}

	// Site repo prepended overrides builtin (§4.3.2).
	path.Prepend(site)
	p, ns, ok = path.Get("zlib")
	if !ok || ns != "llnl.site" || p.Description != "site zlib" {
		t.Errorf("site override failed: %v %q", p.Description, ns)
	}
	if len(path.Repos()) != 2 {
		t.Errorf("repos = %d", len(path.Repos()))
	}
}

func TestPathNamesUnion(t *testing.T) {
	a := NewRepo("a")
	a.MustAdd(pkg.New("x").Describe("d").WithVersion("1", "c"))
	b := NewRepo("b")
	b.MustAdd(pkg.New("x").Describe("d").WithVersion("1", "c"))
	b.MustAdd(pkg.New("y").Describe("d").WithVersion("1", "c"))
	path := NewPath(a, b)
	names := path.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("names = %v", names)
	}
}

func TestIsVirtual(t *testing.T) {
	path := NewPath(Builtin())
	if !path.IsVirtual("mpi") {
		t.Error("mpi should be virtual")
	}
	if !path.IsVirtual("blas") || !path.IsVirtual("lapack") {
		t.Error("blas/lapack should be virtual")
	}
	if path.IsVirtual("mpich") {
		t.Error("mpich is a real package")
	}
	if path.IsVirtual("no-such-thing") {
		t.Error("unknown names are not virtual")
	}
}

func TestVirtualsList(t *testing.T) {
	path := NewPath(Builtin())
	vs := path.Virtuals()
	want := map[string]bool{"mpi": true, "blas": true, "lapack": true}
	for _, v := range vs {
		delete(want, v)
	}
	if len(want) != 0 {
		t.Errorf("missing virtuals: %v (got %v)", want, vs)
	}
}

func TestProviderNames(t *testing.T) {
	path := NewPath(Builtin())
	names := path.ProviderNames("mpi")
	set := make(map[string]bool)
	for _, n := range names {
		set[n] = true
	}
	for _, want := range []string{"mpich", "mvapich2", "openmpi", "bgq-mpi", "cray-mpi"} {
		if !set[want] {
			t.Errorf("mpi providers missing %s: %v", want, names)
		}
	}
}

// TestProvidersForVersionConstraint reproduces Fig. 5's resolution: for
// mpi@2:, mpich 1.x is excluded because it only provides mpi@:1.
func TestProvidersForVersionConstraint(t *testing.T) {
	path := NewPath(Builtin())

	mpi2 := syntax.MustParse("mpi@2:")
	provs := path.ProvidersFor(mpi2)
	for _, pr := range provs {
		if pr.Package.Name == "mpich" && pr.Virtual.Versions.String() == ":1" {
			t.Error("mpich's mpi@:1 entry should not satisfy mpi@2:")
		}
	}
	// mvapich2 must appear (provides mpi@:3.0).
	found := false
	for _, pr := range provs {
		if pr.Package.Name == "mvapich2" {
			found = true
		}
	}
	if !found {
		t.Errorf("mvapich2 should provide mpi@2:; got %v", providerNames(provs))
	}

	// Unconstrained mpi admits everything.
	all := path.ProvidersFor(syntax.MustParse("mpi"))
	if len(all) <= len(provs) {
		t.Errorf("unconstrained providers (%d) should exceed constrained (%d)",
			len(all), len(provs))
	}
}

func providerNames(ps []Provider) []string {
	var out []string
	for _, p := range ps {
		out = append(out, p.Package.Name)
	}
	return out
}

func TestProvidersForDeterministic(t *testing.T) {
	path := NewPath(Builtin())
	a := providerNames(path.ProvidersFor(syntax.MustParse("mpi")))
	b := providerNames(path.ProvidersFor(syntax.MustParse("mpi")))
	if len(a) != len(b) {
		t.Fatal("nondeterministic provider count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic provider order")
		}
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	r := NewRepo("t")
	bad := pkg.New("p").WithVersion("1.0", "x").WithVersion("1.0", "y")
	if err := r.Add(bad); err == nil {
		t.Error("Add should reject invalid package")
	}
}

func TestMustGetPanics(t *testing.T) {
	path := NewPath(NewRepo("empty"))
	defer func() {
		if recover() == nil {
			t.Error("MustGet of missing package should panic")
		}
	}()
	path.MustGet("nothing")
}

func TestGperftoolsBGQDispatch(t *testing.T) {
	// §4.1 / Fig. 12: per-platform install specialization must be wired up.
	r := Builtin()
	gp, _ := r.Get("gperftools")
	patches := gp.PatchesFor(syntax.MustParse("gperftools@2.4%xl=bgq"))
	if len(patches) != 1 || patches[0].Name != "patch.gperftools2.4_xlc" {
		t.Errorf("gperftools bgq/xl patches = %v", patches)
	}
	if got := gp.PatchesFor(syntax.MustParse("gperftools@2.3%gcc=linux-x86_64")); len(got) != 0 {
		t.Errorf("gperftools linux patches = %v", got)
	}
}
