// Package repo implements package repositories (SC'15 §3.1, §4.3.2): named
// collections of package definitions, searched along a configurable path so
// that site-specific repositories can override or extend the builtin one,
// plus the reverse index from virtual interface names to their providers
// that drives virtual-dependency resolution (§3.3, Fig. 6).
package repo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pkg"
	"repro/internal/spec"
)

// A Repo is one namespace of package definitions.
type Repo struct {
	Namespace string
	packages  map[string]*pkg.Package
	// gen counts mutations (Add calls), letting Path.Fingerprint cache its
	// serialization until a repository actually changes.
	gen atomic.Uint64
}

// NewRepo creates an empty repository with a namespace like "builtin" or
// "llnl.ares".
func NewRepo(namespace string) *Repo {
	return &Repo{Namespace: namespace, packages: make(map[string]*pkg.Package)}
}

// Add registers a package definition, validating it first. Re-adding a name
// replaces the previous definition (site repos use fresh Repos instead).
func (r *Repo) Add(p *pkg.Package) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r.packages[p.Name] = p
	r.gen.Add(1)
	return nil
}

// generation returns the mutation counter, used for fingerprint cache
// invalidation.
func (r *Repo) generation() uint64 { return r.gen.Load() }

// MustAdd is Add for package-set construction code; it panics on error.
func (r *Repo) MustAdd(p *pkg.Package) {
	if err := r.Add(p); err != nil {
		panic(err)
	}
}

// Get returns a package definition by name.
func (r *Repo) Get(name string) (*pkg.Package, bool) {
	p, ok := r.packages[name]
	return p, ok
}

// Names returns all package names, sorted.
func (r *Repo) Names() []string {
	out := make([]string, 0, len(r.packages))
	for n := range r.packages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of packages in the repository.
func (r *Repo) Len() int { return len(r.packages) }

// A Path is an ordered search path of repositories: the first repository
// containing a name wins, so a site repo listed before builtin overrides
// builtin's recipe (§4.3.2: "custom packages can inherit from and replace
// Spack's default packages").
type Path struct {
	repos []*Repo

	// Fingerprint cache (see fingerprint.go): the serialized-and-hashed
	// path contents, valid while every repo's generation matches fpGens.
	fpMu    sync.Mutex
	fpCache string
	fpGens  []uint64
}

// NewPath builds a search path; earlier repositories take precedence.
func NewPath(repos ...*Repo) *Path {
	return &Path{repos: repos}
}

// Prepend adds a repository at highest precedence.
func (p *Path) Prepend(r *Repo) { p.repos = append([]*Repo{r}, p.repos...) }

// Repos returns the path in precedence order.
func (p *Path) Repos() []*Repo { return p.repos }

// Get resolves a package name along the path, returning the definition and
// the namespace that supplied it.
func (p *Path) Get(name string) (*pkg.Package, string, bool) {
	for _, r := range p.repos {
		if def, ok := r.Get(name); ok {
			return def, r.Namespace, true
		}
	}
	return nil, "", false
}

// MustGet is Get for callers that have already checked existence.
func (p *Path) MustGet(name string) *pkg.Package {
	def, _, ok := p.Get(name)
	if !ok {
		panic(fmt.Sprintf("repo: unknown package %q", name))
	}
	return def
}

// Names returns the union of package names visible along the path.
func (p *Path) Names() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range p.repos {
		for _, n := range r.Names() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out
}

// IsVirtual reports whether a name denotes a virtual interface: no package
// file of that name exists, but at least one package provides it (§3.3).
func (p *Path) IsVirtual(name string) bool {
	if _, _, ok := p.Get(name); ok {
		return false
	}
	return len(p.ProviderNames(name)) > 0
}

// ProviderNames returns the names of all packages with a provides directive
// for the virtual, sorted.
func (p *Path) ProviderNames(virtual string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range p.repos {
		for _, n := range r.Names() {
			if seen[n] {
				continue
			}
			def, _ := r.Get(n)
			if def.ProvidesVirtualName(virtual) {
				out = append(out, n)
			}
			seen[n] = true
		}
	}
	sort.Strings(out)
	return out
}

// Provider describes one candidate implementation of a virtual spec: the
// provider package and the provider configuration constraint under which it
// supplies a compatible interface version.
type Provider struct {
	Package *pkg.Package
	// When is the provider-side condition (e.g. mvapich2@2.0 provides
	// mpi@:3.0 only when the provider itself is at 2.0); nil if
	// unconditional.
	When *spec.Spec
	// Virtual is the interface spec supplied under that condition.
	Virtual *spec.Spec
}

// ProvidersFor builds the reverse index for one virtual constraint: all
// (package, condition) pairs whose provided interface version list is
// compatible with the requested virtual spec (Fig. 6's "Resolve Virtual
// Deps" stage). The result is sorted by package name for determinism.
func (p *Path) ProvidersFor(virtual *spec.Spec) []Provider {
	var out []Provider
	seen := make(map[string]bool)
	for _, r := range p.repos {
		for _, name := range r.Names() {
			if seen[name] {
				continue
			}
			seen[name] = true
			def, _ := r.Get(name)
			for _, pr := range def.Provides {
				if pr.Virtual.Name != virtual.Name {
					continue
				}
				// The provided interface spec must be compatible with the
				// requested constraint (version lists overlap).
				if !pr.Virtual.Compatible(virtual) {
					continue
				}
				out = append(out, Provider{Package: def, When: pr.When, Virtual: pr.Virtual.Clone()})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Package.Name != out[j].Package.Name {
			return out[i].Package.Name < out[j].Package.Name
		}
		// More specific (conditioned) entries first within a package.
		return out[i].When != nil && out[j].When == nil
	})
	return out
}

// Virtuals returns the names of all virtual interfaces visible on the path.
func (p *Path) Virtuals() []string {
	set := make(map[string]bool)
	for _, r := range p.repos {
		for _, n := range r.Names() {
			def, _ := r.Get(n)
			for _, pr := range def.Provides {
				set[pr.Virtual.Name] = true
			}
		}
	}
	var out []string
	for v := range set {
		if p.IsVirtual(v) {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
