// Application-tier packages: the simulation codes and supporting numeric
// libraries a 2015 HPC center actually ran. These are the DAG roots that
// give the Fig. 8 repository its realistic top-heavy shapes (applications
// pulling in 10-25 packages through MPI, BLAS, FFT and I/O stacks).
package repo

import "repro/internal/pkg"

func init() {
	builtinExtraGroups = append(builtinExtraGroups, addNumericLeaves, addApplications)
}

// addNumericLeaves defines multiprecision and geometry libraries apps need.
func addNumericLeaves(r *Repo) {
	gmp := pkg.New("gmp").
		Describe("GNU multiple-precision arithmetic library.").
		DependsOn("m4", pkg.BuildOnly()).
		WithBuild("autotools", 30)
	addVersions(gmp, "6.0.0a", "6.1.0")
	r.MustAdd(gmp)

	mpfr := pkg.New("mpfr").
		Describe("Multiple-precision floating point with correct rounding.").
		DependsOn("gmp").
		WithBuild("autotools", 18)
	addVersions(mpfr, "3.1.3")
	r.MustAdd(mpfr)

	mpc := pkg.New("mpc").
		Describe("Arithmetic of complex numbers with arbitrary precision.").
		DependsOn("gmp").
		DependsOn("mpfr").
		WithBuild("autotools", 10)
	addVersions(mpc, "1.0.3")
	r.MustAdd(mpc)

	isl := pkg.New("isl").
		Describe("Integer set library for polyhedral compilation.").
		DependsOn("gmp").
		WithBuild("autotools", 22)
	addVersions(isl, "0.14")
	r.MustAdd(isl)

	binutils := pkg.New("binutils").
		Describe("GNU binary utilities (as, ld, objdump...).").
		DependsOn("zlib").
		WithBuild("autotools", 60)
	addVersions(binutils, "2.25")
	r.MustAdd(binutils)

	gdb := pkg.New("gdb").
		Describe("The GNU debugger.").
		DependsOn("ncurses").
		DependsOn("expat").
		DependsOn("python").
		WithBuild("autotools", 80)
	addVersions(gdb, "7.9.1")
	r.MustAdd(gdb)

	cgal := pkg.New("cgal").
		Describe("Computational geometry algorithms library.").
		RequiresCompilerFeature("cxx11", "@4.7:").
		DependsOn("boost").
		DependsOn("gmp").
		DependsOn("mpfr").
		DependsOn("cmake", pkg.BuildOnly()).
		WithBuild("cmake", 45)
	addVersions(cgal, "4.6.1")
	r.MustAdd(cgal)

	glpk := pkg.New("glpk").
		Describe("GNU linear programming kit.").
		DependsOn("gmp").
		WithBuild("autotools", 16)
	addVersions(glpk, "4.55")
	r.MustAdd(glpk)
}

// addApplications defines the simulation codes.
func addApplications(r *Repo) {
	lammps := pkg.New("lammps").
		Describe("Large-scale atomic/molecular massively parallel simulator.").
		WithVariant("fft", true, "Use FFTW for k-space solvers").
		DependsOn("mpi").
		DependsOn("fftw+mpi", pkg.When("+fft")).
		WithBuild("autotools", 180)
	addVersions(lammps, "2015.08.10")
	r.MustAdd(lammps)

	gromacs := pkg.New("gromacs").
		Describe("Molecular dynamics for biochemical systems.").
		RequiresCompilerFeature("cxx11", "@5:").
		WithVariant("mpi", true, "Parallel mdrun").
		DependsOn("mpi", pkg.When("+mpi")).
		DependsOn("fftw").
		DependsOn("blas").
		DependsOn("cmake", pkg.BuildOnly()).
		WithBuild("cmake", 200)
	addVersions(gromacs, "5.0.5")
	r.MustAdd(gromacs)

	namd := pkg.New("namd").
		Describe("Scalable molecular dynamics (Charm++).").
		DependsOn("charmpp").
		DependsOn("fftw").
		DependsOn("tcl").
		WithBuild("autotools", 160)
	addVersions(namd, "2.10")
	r.MustAdd(namd)

	charmpp := pkg.New("charmpp").
		Describe("Charm++ parallel programming framework.").
		DependsOn("mpi").
		WithBuild("autotools", 90)
	addVersions(charmpp, "6.6.1")
	r.MustAdd(charmpp)

	espresso := pkg.New("quantum-espresso").
		Describe("Electronic-structure calculations (plane waves, DFT).").
		WithVariant("mpi", true, "Parallel build").
		DependsOn("mpi", pkg.When("+mpi")).
		DependsOn("blas").
		DependsOn("lapack").
		DependsOn("fftw").
		WithBuild("autotools", 220)
	addVersions(espresso, "5.1.2")
	r.MustAdd(espresso)

	nwchem := pkg.New("nwchem").
		Describe("Computational chemistry at scale.").
		DependsOn("mpi").
		DependsOn("blas").
		DependsOn("lapack").
		DependsOn("ga").
		DependsOn("python").
		WithBuild("autotools", 300)
	addVersions(nwchem, "6.5")
	r.MustAdd(nwchem)

	openfoam := pkg.New("openfoam").
		Describe("Open-source computational fluid dynamics toolbox.").
		DependsOn("mpi").
		DependsOn("scotch").
		DependsOn("cgal").
		DependsOn("flex", pkg.BuildOnly()).
		DependsOn("cmake", pkg.BuildOnly()).
		WithBuild("autotools", 400)
	addVersions(openfoam, "2.4.0")
	r.MustAdd(openfoam)

	wrf := pkg.New("wrf").
		Describe("Weather research and forecasting model.").
		DependsOn("mpi").
		DependsOn("netcdf").
		DependsOn("netcdf-fortran").
		DependsOn("hdf5+mpi").
		WithBuild("autotools", 260)
	addVersions(wrf, "3.7.1")
	r.MustAdd(wrf)

	cp2k := pkg.New("cp2k").
		Describe("Atomistic simulations of solid state and liquids.").
		DependsOn("mpi").
		DependsOn("blas").
		DependsOn("lapack").
		DependsOn("fftw").
		DependsOn("libint").
		WithBuild("autotools", 280)
	addVersions(cp2k, "2.6.1")
	r.MustAdd(cp2k)

	libint := pkg.New("libint").
		Describe("Gaussian integrals for quantum chemistry.").
		DependsOn("gmp").
		WithBuild("autotools", 55)
	addVersions(libint, "1.1.4")
	r.MustAdd(libint)

	// Proxy apps: the small benchmarks centers use for procurement.
	lulesh := pkg.New("lulesh").
		Describe("Livermore unstructured Lagrangian explicit shock hydro proxy.").
		WithVariant("openmp", true, "Threaded version").
		RequiresCompilerFeature("openmp3", "+openmp").
		DependsOn("mpi").
		WithBuild("autotools", 12)
	addVersions(lulesh, "2.0.3")
	r.MustAdd(lulesh)

	kripke := pkg.New("kripke").
		Describe("Deterministic particle-transport proxy application (LLNL).").
		RequiresCompilerFeature("cxx11", "").
		DependsOn("mpi").
		DependsOn("cmake", pkg.BuildOnly()).
		WithBuild("cmake", 25)
	addVersions(kripke, "1.1")
	r.MustAdd(kripke)

	amg2013 := pkg.New("amg2013").
		Describe("Algebraic multigrid proxy from hypre (LLNL).").
		DependsOn("mpi").
		WithBuild("autotools", 15)
	addVersions(amg2013, "1.0")
	r.MustAdd(amg2013)
}
