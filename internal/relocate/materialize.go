package relocate

import (
	"fmt"
	"path"
	"strings"

	"repro/internal/buildenv"
	"repro/internal/simfs"
)

// File is one file or symlink of a prefix tree being relocated. Path is
// relative to the prefix root.
type File struct {
	Path    string
	Symlink string
	Data    []byte
}

// CountError reports a file whose re-counted occurrences disagree with
// the recorded relocation table — the file set was packed against a
// different tree than it claims.
type CountError struct {
	Path string
	Got  map[string]int
	Want map[string]int
}

func (e *CountError) Error() string {
	return fmt.Sprintf("relocate: %s: relocation count mismatch (got %v, recorded %v)", e.Path, e.Got, e.Want)
}

// UnrecordedError reports a file carrying source-path occurrences the
// relocation table never recorded.
type UnrecordedError struct {
	Path   string
	Counts map[string]int
}

func (e *UnrecordedError) Error() string {
	return fmt.Sprintf("relocate: %s: unrecorded path occurrences %v", e.Path, e.Counts)
}

// RPathError reports an embedded rpath that still points into the source
// root after rewriting — the isolation §3.5.2 bought would be lost.
type RPathError struct {
	Path  string
	RPath string
	Root  string
}

func (e *RPathError) Error() string {
	return fmt.Sprintf("relocate: %s: rpath %s still points into source root %s", e.Path, e.RPath, e.Root)
}

// IsRelocationError reports whether err is one of the relocation-defect
// errors (count mismatch, unrecorded occurrences, leaked rpath) as
// opposed to an I/O failure.
func IsRelocationError(err error) bool {
	switch err.(type) {
	case *CountError, *UnrecordedError, *RPathError:
		return true
	}
	return false
}

// ScanRPaths checks a rewritten file's embedded rpaths against a
// forbidden source root: after relocation no rpath may still point into
// the tree the bytes came from. An empty root disables the scan.
func ScanRPaths(filePath string, content []byte, forbidRoot string) error {
	if forbidRoot == "" {
		return nil
	}
	for _, rp := range buildenv.BinaryRPATHs(content) {
		if rp == forbidRoot || strings.HasPrefix(rp, forbidRoot+"/") {
			return &RPathError{Path: filePath, RPath: rp, Root: forbidRoot}
		}
	}
	return nil
}

// UniqueRPaths returns a binary's embedded rpaths with duplicates
// collapsed, preserving first-seen order. Splicing two prefixes onto the
// same target can fold distinct source rpaths into one; consumers that
// re-emit rpath sets use this to keep them minimal.
func UniqueRPaths(content []byte) []string {
	var out []string
	seen := make(map[string]bool)
	for _, rp := range buildenv.BinaryRPATHs(content) {
		if seen[rp] {
			continue
		}
		seen[rp] = true
		out = append(out, rp)
	}
	return out
}

// Snapshot captures a prefix tree as a relocatable file set: every
// regular file's bytes and every symlink's target, paths relative to the
// prefix, in the filesystem's walk order.
func Snapshot(fs *simfs.FS, prefix string) ([]File, error) {
	var out []File
	err := fs.Walk(prefix, func(p string, isLink bool) error {
		rel := strings.TrimPrefix(p, prefix+"/")
		if isLink {
			target, err := fs.Readlink(p)
			if err != nil {
				return err
			}
			out = append(out, File{Path: rel, Symlink: target})
			return nil
		}
		data, err := fs.ReadFile(p)
		if err != nil {
			return err
		}
		out = append(out, File{Path: rel, Data: data})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Options configures Materialize.
type Options struct {
	// Table maps source paths to their locations under the target.
	Table Table
	// Want records expected per-file occurrence counts (by relative
	// path). When non-nil every rewritten file is verified: recorded
	// files must re-count exactly, and unrecorded files must carry no
	// occurrences at all. Nil skips verification (trusted local source).
	Want map[string]map[string]int
	// ForbidRoot rejects any file whose rewritten rpaths still point
	// into this tree; empty disables the scan.
	ForbidRoot string
	// Meter, when set, is charged FileCPU per regular file — the
	// simulated cost of scanning and rewriting it.
	Meter *simfs.Meter
}

// Materialize writes a relocated file set into prefix: directories are
// created as needed, symlink targets are rewritten through the table,
// and each regular file's bytes are rewritten, verified against the
// recorded counts, rpath-scanned, and landed via temp + rename — so an
// I/O failure mid-write never leaves a torn file at its final path.
// Returns how many files and symlinks were written.
func Materialize(fs *simfs.FS, prefix string, files []File, o Options) (int, error) {
	made := map[string]bool{prefix: true}
	n := 0
	for _, f := range files {
		target := prefix + "/" + f.Path
		dir := path.Dir(target)
		if !made[dir] {
			if err := fs.MkdirAll(dir); err != nil {
				return n, err
			}
			made[dir] = true
		}
		if f.Symlink != "" {
			if err := fs.Symlink(o.Table.RewriteString(f.Symlink), target); err != nil {
				return n, err
			}
			n++
			continue
		}
		out, counts := o.Table.Rewrite(f.Data)
		if o.Want != nil {
			if want, recorded := o.Want[f.Path]; recorded && !CountsEqual(counts, want) {
				return n, &CountError{Path: f.Path, Got: counts, Want: want}
			}
			if !RecordedOrClean(o.Want, f.Path, counts) {
				return n, &UnrecordedError{Path: f.Path, Counts: counts}
			}
		}
		if o.Meter != nil {
			o.Meter.Add("relocate", FileCPU)
		}
		if err := ScanRPaths(f.Path, out, o.ForbidRoot); err != nil {
			return n, err
		}
		// Temp + rename: a failure mid-write never leaves a torn file at
		// the final path, and the enclosing transaction rolls the prefix
		// back.
		tmp := target + ".rtmp"
		if err := fs.WriteFile(tmp, out); err != nil {
			return n, err
		}
		if err := fs.Rename(tmp, target); err != nil {
			_ = fs.Remove(tmp)
			return n, err
		}
		n++
	}
	return n, nil
}
