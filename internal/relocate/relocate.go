// Package relocate is the shared binary-relocation engine behind the
// build cache and the splice operation (SC'15 §3.4's prefix rewriting
// plus §3.5.2's rpath isolation). It owns the mechanics of moving an
// installed prefix between path namespaces: longest-source-first rewrite
// tables, single-pass byte rewriting with per-source occurrence counts,
// count verification against a recorded relocation table, an rpath sanity
// scan, and the temp+rename materialization of a relocated file set into
// a target prefix.
//
// Two consumers share it: buildcache.Pull relocates archives packed on
// another machine into the local store, and splice rewires an installed
// DAG in place — replacing one dependency's prefix under every dependent
// without rebuilding them.
package relocate

import (
	"sort"
	"strings"
	"time"
)

// FileCPU is the simulated CPU cost of scanning and rewriting one file —
// tiny next to the compile time relocation replaces.
const FileCPU = 40 * time.Microsecond

// Rule is one source→target path rewrite.
type Rule struct {
	From string
	To   string
}

// Table is an ordered set of rewrite rules, longest source first, so
// nested paths (a dependency prefix inside the store root) are matched
// before their parents — replacing the root first would corrupt every
// prefix occurrence under it.
type Table []Rule

// NewTable builds a Table from source→target pairs, ordered longest
// source first (ties break lexicographically for determinism).
func NewTable(pairs map[string]string) Table {
	out := make(Table, 0, len(pairs))
	for from, to := range pairs {
		out = append(out, Rule{From: from, To: to})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].From) != len(out[j].From) {
			return len(out[i].From) > len(out[j].From)
		}
		return out[i].From < out[j].From
	})
	return out
}

// Identity builds a Table mapping each path to itself — the packer's
// table: rewriting is a no-op but the occurrence counts record how many
// times each source appears, which is what Push stores for Pull to verify.
func Identity(paths ...string) Table {
	pairs := make(map[string]string, len(paths))
	for _, p := range paths {
		pairs[p] = p
	}
	return NewTable(pairs)
}

// Rewrite rewrites every occurrence of the table's source paths in one
// pass (leftmost match, longest source wins) and returns the result plus
// per-source occurrence counts.
func (t Table) Rewrite(data []byte) ([]byte, map[string]int) {
	counts := make(map[string]int)
	if len(t) == 0 {
		return data, counts
	}
	// Fast path: no source occurs at all (bulk data files).
	s := string(data)
	any := false
	for _, r := range t {
		if strings.Contains(s, r.From) {
			any = true
			break
		}
	}
	if !any {
		return data, counts
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		matched := false
		for _, r := range t {
			if strings.HasPrefix(s[i:], r.From) {
				b.WriteString(r.To)
				counts[r.From]++
				i += len(r.From)
				matched = true
				break
			}
		}
		if !matched {
			b.WriteByte(s[i])
			i++
		}
	}
	return []byte(b.String()), counts
}

// RewriteString rewrites a single string (symlink targets).
func (t Table) RewriteString(s string) string {
	out, _ := t.Rewrite([]byte(s))
	return string(out)
}

// CountsEqual compares a re-count against a recorded table, ignoring
// zero entries on either side — a source recorded with zero occurrences
// constrains nothing.
func CountsEqual(got, want map[string]int) bool {
	for k, v := range want {
		if v != 0 && got[k] != v {
			return false
		}
	}
	for k, v := range got {
		if v != 0 && want[k] != v {
			return false
		}
	}
	return true
}

// Clean reports whether a count set records no occurrences at all.
func Clean(counts map[string]int) bool {
	for _, v := range counts {
		if v != 0 {
			return false
		}
	}
	return true
}

// RecordedOrClean accepts a file whose occurrence counts are either
// recorded in the relocation table or empty — occurrences the packer did
// not record mean the file set and its table disagree.
func RecordedOrClean(want map[string]map[string]int, path string, counts map[string]int) bool {
	if _, recorded := want[path]; recorded {
		return true
	}
	return Clean(counts)
}
