package relocate

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/simfs"
)

func TestNewTableOrdersLongestSourceFirst(t *testing.T) {
	table := NewTable(map[string]string{
		"/spack/opt":              "/new/opt",
		"/spack/opt/x/libelf-1.0": "/new/opt/y/libelf-1.0",
		"/spack/opt/x":            "/new/opt/y",
	})
	if len(table) != 3 {
		t.Fatalf("table has %d entries, want 3", len(table))
	}
	for i := 1; i < len(table); i++ {
		if len(table[i].From) > len(table[i-1].From) {
			t.Fatalf("table not longest-first: %q after %q", table[i].From, table[i-1].From)
		}
	}
	if table[0].From != "/spack/opt/x/libelf-1.0" {
		t.Errorf("longest source = %q, want the nested prefix", table[0].From)
	}
}

func TestRewriteNestedPrefixes(t *testing.T) {
	table := NewTable(map[string]string{
		"/spack/opt":        "/site/store",
		"/spack/opt/libelf": "/site/store/libelf-relocated",
	})
	in := []byte("RPATH /spack/opt/libelf/lib\nroot=/spack/opt\n")
	out, counts := table.Rewrite(in)
	want := "RPATH /site/store/libelf-relocated/lib\nroot=/site/store\n"
	if string(out) != want {
		t.Errorf("relocated = %q, want %q", out, want)
	}
	// The nested prefix must win over its parent: one count each.
	if counts["/spack/opt/libelf"] != 1 || counts["/spack/opt"] != 1 {
		t.Errorf("counts = %v, want one occurrence of each source", counts)
	}
}

// TestRewritePrefixOfPrefix covers one store prefix being a plain string
// prefix of another (no path separator between them): the longer source
// must still win, and the shorter must not corrupt it.
func TestRewritePrefixOfPrefix(t *testing.T) {
	table := NewTable(map[string]string{
		"/opt/lib":    "/dst/short",
		"/opt/libelf": "/dst/long",
	})
	in := []byte("a=/opt/libelf b=/opt/lib c=/opt/libelf/lib\n")
	out, counts := table.Rewrite(in)
	want := "a=/dst/long b=/dst/short c=/dst/long/lib\n"
	if string(out) != want {
		t.Errorf("relocated = %q, want %q", out, want)
	}
	if counts["/opt/libelf"] != 2 || counts["/opt/lib"] != 1 {
		t.Errorf("counts = %v, want /opt/libelf:2 /opt/lib:1", counts)
	}
}

func TestRewriteNoOccurrences(t *testing.T) {
	table := NewTable(map[string]string{"/spack/opt": "/new"})
	in := []byte("plain payload with no store paths")
	out, counts := table.Rewrite(in)
	if string(out) != string(in) {
		t.Errorf("clean payload was rewritten: %q", out)
	}
	if len(counts) != 0 {
		t.Errorf("counts = %v, want empty", counts)
	}
}

func TestRewriteString(t *testing.T) {
	table := NewTable(map[string]string{"/a": "/b"})
	if got := table.RewriteString("/a/lib/libelf.so"); got != "/b/lib/libelf.so" {
		t.Errorf("RewriteString = %q", got)
	}
}

func TestIdentityCountsWithoutRewriting(t *testing.T) {
	table := Identity("/opt/pkg", "/opt")
	in := []byte("RPATH /opt/pkg/lib\n/opt/other\n")
	out, counts := table.Rewrite(in)
	if string(out) != string(in) {
		t.Errorf("identity table rewrote the payload: %q", out)
	}
	if counts["/opt/pkg"] != 1 || counts["/opt"] != 1 {
		t.Errorf("counts = %v, want /opt/pkg:1 /opt:1", counts)
	}
}

func TestCountsEqual(t *testing.T) {
	cases := []struct {
		got, want map[string]int
		eq        bool
	}{
		{map[string]int{"/a": 2}, map[string]int{"/a": 2}, true},
		{map[string]int{"/a": 2}, map[string]int{"/a": 3}, false},
		{map[string]int{"/a": 2, "/b": 0}, map[string]int{"/a": 2}, true},
		{map[string]int{}, map[string]int{"/a": 1}, false},
		{map[string]int{"/a": 1}, map[string]int{}, false},
		{map[string]int{}, map[string]int{}, true},
		// Zero-valued entries on the recorded side constrain nothing: a
		// packer that recorded a source with zero occurrences must not
		// force the re-count to mention it.
		{map[string]int{"/a": 1}, map[string]int{"/a": 1, "/b": 0}, true},
		{map[string]int{"/a": 0}, map[string]int{"/b": 0}, true},
	}
	for i, c := range cases {
		if got := CountsEqual(c.got, c.want); got != c.eq {
			t.Errorf("case %d: CountsEqual(%v, %v) = %v, want %v", i, c.got, c.want, got, c.eq)
		}
	}
}

func TestRecordedOrClean(t *testing.T) {
	want := map[string]map[string]int{"bin/app": {"/a": 1}}
	if !RecordedOrClean(want, "bin/app", map[string]int{"/a": 5}) {
		t.Error("recorded file rejected")
	}
	if !RecordedOrClean(want, "share/doc", map[string]int{}) {
		t.Error("clean unrecorded file rejected")
	}
	if RecordedOrClean(want, "share/doc", map[string]int{"/a": 1}) {
		t.Error("dirty unrecorded file accepted")
	}
	// A zero-occurrence count set is clean even when entries exist.
	if !RecordedOrClean(want, "share/doc", map[string]int{"/a": 0}) {
		t.Error("zero-occurrence unrecorded file rejected")
	}
}

func TestScanRPaths(t *testing.T) {
	content := []byte("RPATH /new/store/libelf/lib\nRPATH /old/store/libelf/lib\n")
	err := ScanRPaths("bin/app", content, "/old/store")
	var re *RPathError
	if !errors.As(err, &re) {
		t.Fatalf("ScanRPaths = %v, want *RPathError", err)
	}
	if re.RPath != "/old/store/libelf/lib" {
		t.Errorf("leaked rpath = %q", re.RPath)
	}
	if !IsRelocationError(err) {
		t.Error("RPathError not classified as a relocation error")
	}
	// Empty forbidden root disables the scan; a clean binary passes.
	if err := ScanRPaths("bin/app", content, ""); err != nil {
		t.Errorf("disabled scan errored: %v", err)
	}
	clean := []byte("RPATH /new/store/libelf/lib\n")
	if err := ScanRPaths("bin/app", clean, "/old/store"); err != nil {
		t.Errorf("clean binary rejected: %v", err)
	}
	// Prefix matching is path-aware: /old/store2 is not inside /old/store.
	other := []byte("RPATH /old/store2/lib\n")
	if err := ScanRPaths("bin/app", other, "/old/store"); err != nil {
		t.Errorf("sibling root rejected: %v", err)
	}
}

// TestUniqueRPathsDedupAfterRewrite: splicing two prefixes onto one
// target can fold distinct source rpaths into the same string; the dedup
// must collapse them while preserving first-seen order.
func TestUniqueRPathsDedupAfterRewrite(t *testing.T) {
	table := NewTable(map[string]string{
		"/opt/zlib-1.2.7": "/opt/zlib-1.2.8",
		"/opt/zlib-old":   "/opt/zlib-1.2.8",
	})
	in := []byte("RPATH /opt/zlib-1.2.7/lib\nRPATH /opt/zlib-old/lib\nRPATH /opt/other/lib\n")
	out, _ := table.Rewrite(in)
	got := UniqueRPaths(out)
	want := []string{"/opt/zlib-1.2.8/lib", "/opt/other/lib"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UniqueRPaths = %v, want %v", got, want)
	}
}

func TestSnapshotMaterializeRoundTrip(t *testing.T) {
	fs := simfs.New(simfs.TempFS)
	src := "/store/pkg-aaaa"
	for _, dir := range []string{src + "/lib", src + "/share"} {
		if err := fs.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile(src+"/lib/libz.so", []byte("RPATH /store/pkg-aaaa/lib\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(src+"/share/doc", []byte("no paths here")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(src+"/lib/libz.so", src+"/lib/libz.so.1"); err != nil {
		t.Fatal(err)
	}

	files, err := Snapshot(fs, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("snapshot has %d files, want 3", len(files))
	}

	dst := "/store/pkg-bbbb"
	meter := simfs.NewMeter()
	n, err := Materialize(fs, dst, files, Options{
		Table: NewTable(map[string]string{src: dst}),
		Meter: meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("materialized %d entries, want 3", n)
	}
	data, err := fs.ReadFile(dst + "/lib/libz.so")
	if err != nil || string(data) != "RPATH /store/pkg-bbbb/lib\n" {
		t.Errorf("rewritten file = %q, %v", data, err)
	}
	if target, err := fs.Readlink(dst + "/lib/libz.so.1"); err != nil || target != dst+"/lib/libz.so" {
		t.Errorf("rewritten symlink = %q, %v", target, err)
	}
	if meter.Cost() != 2*FileCPU {
		t.Errorf("meter charged %v, want %v (two regular files)", meter.Cost(), 2*FileCPU)
	}
}

func TestMaterializeVerifiesRecordedCounts(t *testing.T) {
	fs := simfs.New(simfs.TempFS)
	table := NewTable(map[string]string{"/old": "/new"})
	files := []File{{Path: "bin/app", Data: []byte("/old /old\n")}}

	// Re-count disagrees with the recorded table: CountError.
	_, err := Materialize(fs, "/dst", files, Options{
		Table: table,
		Want:  map[string]map[string]int{"bin/app": {"/old": 1}},
	})
	var ce *CountError
	if !errors.As(err, &ce) {
		t.Fatalf("Materialize = %v, want *CountError", err)
	}
	if !IsRelocationError(err) {
		t.Error("CountError not classified as a relocation error")
	}

	// Occurrences in a file the table never recorded: UnrecordedError.
	_, err = Materialize(fs, "/dst2", files, Options{
		Table: table,
		Want:  map[string]map[string]int{"bin/other": {"/old": 2}},
	})
	var ue *UnrecordedError
	if !errors.As(err, &ue) {
		t.Fatalf("Materialize = %v, want *UnrecordedError", err)
	}

	// Exact agreement passes.
	if _, err := Materialize(fs, "/dst3", files, Options{
		Table: table,
		Want:  map[string]map[string]int{"bin/app": {"/old": 2}},
	}); err != nil {
		t.Fatalf("agreeing counts rejected: %v", err)
	}
}

func TestMaterializeRejectsLeakedRPaths(t *testing.T) {
	fs := simfs.New(simfs.TempFS)
	files := []File{{Path: "bin/app", Data: []byte("RPATH /src/store/dep/lib\n")}}
	_, err := Materialize(fs, "/dst", files, Options{
		Table:      NewTable(map[string]string{"/src/store/pkg": "/dst"}),
		ForbidRoot: "/src/store",
	})
	var re *RPathError
	if !errors.As(err, &re) {
		t.Fatalf("Materialize = %v, want *RPathError", err)
	}
}
