// Buildcache-service benchmarks (run via `make bench-service` →
// BENCH_service.json):
//
//	BenchmarkServiceInstallHerd/herd/c256 — 256 concurrent clients all
//	    POST /v1/install of the 47-package ARES stack against a daemon
//	    with a cold store. Server-side singleflight must collapse the
//	    thundering herd onto exactly one cache-miss build; the derived
//	    coalescing ratio (clients per source build, bar ≥ 8, measured
//	    at 256) is the acceptance gate `benchjson -check` enforces.
//	BenchmarkServiceInstallHerd/warm/c256 — the same herd against a
//	    daemon whose store already holds the stack: pure service
//	    overhead (concretize memo hit + store probe), reported as
//	    installs/sec and p99 latency for context.
package repro

import (
	"context"
	"io"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/ares"
	"repro/internal/build"
	"repro/internal/compiler"
	"repro/internal/concretize"
	"repro/internal/config"
	"repro/internal/repo"
	"repro/internal/service"
)

// newBenchDaemon wires a fresh install machine behind an HTTP daemon on
// an ephemeral port, returning the server, its base URL, and the
// builder (whose store the caller may pre-warm).
func newBenchDaemon(tb testing.TB) (*service.Server, string, *build.Builder) {
	tb.Helper()
	m := newBenchMachine(nil)
	path := repo.NewPath(ares.Repo(), repo.Builtin())
	srv := service.NewServer(service.Config{
		Mirror:      bcSources,
		Concretizer: concretize.New(path, config.New(), compiler.LLNLRegistry()),
		Builder:     m,
		Log:         io.Discard,
	})
	base, err := srv.Start("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	return srv, "http://" + base, m
}

// herd fires clients concurrent installs of expr at the daemon and
// returns the sorted per-request latencies plus the herd's wall time.
func herd(tb testing.TB, base, expr string, clients int) ([]time.Duration, time.Duration) {
	tb.Helper()
	latencies := make([]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			_, errs[i] = service.NewClient(base).Install(expr)
			latencies[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			tb.Fatal(err)
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies, wall
}

func p99(sorted []time.Duration) time.Duration {
	return sorted[len(sorted)*99/100]
}

func BenchmarkServiceInstallHerd(b *testing.B) {
	bcSetup()
	if bcErr != nil {
		b.Fatal(bcErr)
	}
	const clients = 256
	expr := ares.Current.Spec()

	b.Run("herd/c256", func(b *testing.B) {
		var lastP99, lastRate float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv, base, _ := newBenchDaemon(b)
			b.StartTimer()
			lat, wall := herd(b, base, expr, clients)
			b.StopTimer()
			st := srv.Stats()
			if st.SourceBuilds != 1 {
				b.Fatalf("herd of %d triggered %d cache-miss builds, want exactly 1", clients, st.SourceBuilds)
			}
			if st.Install.Requests != clients {
				b.Fatalf("install requests = %d, want %d", st.Install.Requests, clients)
			}
			lastP99 = float64(p99(lat).Milliseconds())
			lastRate = float64(clients) / wall.Seconds()
			b.StartTimer()
		}
		b.ReportMetric(float64(clients), "clients")
		b.ReportMetric(1, "source-builds")
		b.ReportMetric(lastRate, "installs/sec")
		b.ReportMetric(lastP99, "p99-ms")
	})

	b.Run("warm/c256", func(b *testing.B) {
		srv, base, m := newBenchDaemon(b)
		if _, err := m.Build(bcSpec); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var lastP99, lastRate float64
		for i := 0; i < b.N; i++ {
			lat, wall := herd(b, base, expr, clients)
			lastP99 = float64(p99(lat).Milliseconds())
			lastRate = float64(clients) / wall.Seconds()
		}
		b.StopTimer()
		if st := srv.Stats(); st.SourceBuilds != 0 {
			b.Fatalf("warm herd triggered %d source builds", st.SourceBuilds)
		}
		b.ReportMetric(lastRate, "installs/sec")
		b.ReportMetric(lastP99, "p99-ms")
	})
}

// TestServiceBenchSanity keeps the bench wiring honest under plain
// `go test`: a small herd against a cold daemon must coalesce onto one
// source build, and every client must see the same install prefix.
func TestServiceBenchSanity(t *testing.T) {
	bcSetup()
	if bcErr != nil {
		t.Fatal(bcErr)
	}
	srv, base, _ := newBenchDaemon(t)
	const clients = 16
	expr := ares.Current.Spec()
	prefixes := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := service.NewClient(base).Install(expr)
			if err == nil {
				prefixes[i] = resp.Prefix
			}
		}(i)
	}
	wg.Wait()
	for i, p := range prefixes {
		if p == "" || p != prefixes[0] {
			t.Fatalf("client %d prefix = %q, client 0 = %q", i, p, prefixes[0])
		}
	}
	st := srv.Stats()
	if st.SourceBuilds != 1 {
		t.Fatalf("herd of %d triggered %d cache-miss builds, want 1", clients, st.SourceBuilds)
	}
	if st.Install.Requests != clients {
		t.Fatalf("install requests = %d, want %d", st.Install.Requests, clients)
	}
}
