// Environment benchmarks (run via `make bench-env` → BENCH_env.json):
//
//	BenchmarkEnvInstall/cold — `env install` of a three-root manifest
//	    (dyninst + libdwarf + zlib, seven packages) on a brand-new
//	    machine: concretize every root, build the whole DAG, write the
//	    module files, and commit the lockfile, all as one journaled
//	    transaction.
//	BenchmarkEnvInstall/warm — the same `env install` re-run against an
//	    unchanged lockfile: read spack.lock, re-concretize through the
//	    warm memo cache, diff against the installed roots, and conclude
//	    there is nothing to do. The acceptance bar (enforced by
//	    `benchjson -check`) is env_warm_lockfile_speedup ≥ 10 — the
//	    no-op diff must be an order of magnitude cheaper than the
//	    install it avoids repeating.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/env"
)

// envBenchSpecs is the benchmark manifest: dyninst fans out into libelf,
// libdwarf, and boost, so the environment exercises shared dependencies
// and multiple explicit roots.
var envBenchSpecs = []string{"dyninst", "libdwarf", "zlib"}

// envBenchInstall creates one fresh machine, creates the environment, and
// applies it, returning the host and environment for warm re-use.
func envBenchInstall(b *testing.B) (*env.Host, *env.Environment) {
	b.Helper()
	s := core.MustNew()
	e, err := env.Create(s.FS, core.EnvRoot, "bench", envBenchSpecs)
	if err != nil {
		b.Fatal(err)
	}
	h := s.EnvHost()
	res, err := e.Apply(h)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Plan.Add) != len(envBenchSpecs) {
		b.Fatalf("cold apply added %d roots, want %d", len(res.Plan.Add), len(envBenchSpecs))
	}
	return h, e
}

func BenchmarkEnvInstall(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		nodes := 0
		for i := 0; i < b.N; i++ {
			h, e := envBenchInstall(b)
			nodes = h.Store.Len()
			_ = e
		}
		b.ReportMetric(float64(nodes), "store-records")
		b.ReportMetric(float64(len(envBenchSpecs)), "roots")
	})
	b.Run("warm", func(b *testing.B) {
		h, e := envBenchInstall(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Apply(h)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Plan.NoOp() {
				b.Fatalf("warm apply was not a no-op: %d add, %d remove",
					len(res.Plan.Add), len(res.Plan.Remove))
			}
		}
		b.ReportMetric(float64(len(envBenchSpecs)), "roots")
	})
}

// TestEnvBenchSanity keeps the bench wiring honest under plain `go test`:
// the warm leg must really be a lockfile-driven no-op, not a rebuild.
func TestEnvBenchSanity(t *testing.T) {
	s := core.MustNew()
	e, err := env.Create(s.FS, core.EnvRoot, "bench", envBenchSpecs)
	if err != nil {
		t.Fatal(err)
	}
	h := s.EnvHost()
	if _, err := e.Apply(h); err != nil {
		t.Fatal(err)
	}
	before := h.Store.Len()
	res, err := e.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.NoOp() || len(res.Builds) != 0 {
		t.Fatalf("second apply: NoOp=%v builds=%d", res.Plan.NoOp(), len(res.Builds))
	}
	if h.Store.Len() != before {
		t.Fatalf("store changed across a no-op apply: %d -> %d", before, h.Store.Len())
	}
}
